// Package rts is the adaptive runtime system the paper's profiling
// library is "designed to provide a foundation for" (§III-D): it
// executes an application's kernels iteration by iteration, spends each
// kernel's first two iterations on the sample configurations (§III-C),
// classifies the kernel and caches its predicted Pareto frontier, pins
// the kernel to the best predicted configuration under the current
// power cap, and thereafter re-walks the cached frontier whenever the
// cap changes — without re-profiling or re-examining all
// configurations. An optional feedback limiter steps the pinned
// configuration's frequency down when measured power exceeds the cap.
package rts

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"acsel/internal/acpi"
	"acsel/internal/apu"
	"acsel/internal/core"
	"acsel/internal/fault"
	"acsel/internal/kernels"
	"acsel/internal/pareto"
	"acsel/internal/power"
	"acsel/internal/profiler"
	"acsel/internal/rapl"
	"acsel/internal/stats"
)

// Phase describes where a kernel is in its adaptation lifecycle.
type Phase int

const (
	// PhaseSampleCPU is the first iteration (CPU sample config).
	PhaseSampleCPU Phase = iota
	// PhaseSampleGPU is the second iteration (GPU sample config).
	PhaseSampleGPU
	// PhasePinned is every subsequent iteration (selected config).
	PhasePinned
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseSampleCPU:
		return "sample-cpu"
	case PhaseSampleGPU:
		return "sample-gpu"
	case PhasePinned:
		return "pinned"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Options configures the runtime.
type Options struct {
	// CapW is the initial node power cap.
	CapW float64
	// FL enables the feedback frequency limiter on pinned kernels.
	FL bool
	// VarAwareZ, when positive, applies the variance-aware selection
	// margin (§VI): predicted power + z·σ must fit under the cap.
	VarAwareZ float64

	// Faults wires a deterministic fault plan into the runtime's
	// hardware seams (SMU, P-states, counters, kernel iterations) and
	// implicitly arms the watchdog. Nil runs clean.
	Faults *fault.Injector
	// Watchdog arms the cap-violation watchdog and degradation ladder
	// even without fault injection (production posture). With both
	// Faults nil and Watchdog false the runtime behaves exactly as
	// before this layer existed.
	Watchdog bool
	// DivergeFrac is the smoothed |measured−predicted|/predicted power
	// divergence beyond which an iteration counts as unhealthy
	// (default 0.35).
	DivergeFrac float64
	// DemoteAfter is how many consecutive unhealthy pinned iterations
	// walk a kernel one rung down the ladder (default 2).
	DemoteAfter int
	// PromoteAfter is how many consecutive healthy pinned iterations
	// walk it one rung back up (default 4).
	PromoteAfter int
	// MaxApplyRetries bounds the retry-with-backoff loop around
	// transient P-state transition failures (default 3).
	MaxApplyRetries int
	// MaxMeasureRetries bounds sensor re-reads after a dropout
	// (default 2).
	MaxMeasureRetries int
}

// Rung is a kernel's position on the graceful-degradation ladder. The
// runtime starts every kernel at the most aggressive rung its options
// allow and demotes one rung at a time when measured power diverges
// from predicted or violates the cap; sustained healthy readings
// promote it back up.
type Rung int

const (
	// RungModel trusts the model's selection outright (the paper's
	// Model method).
	RungModel Rung = iota
	// RungModelFL adds the measured-power feedback limiter on top of
	// the model's selection (Model+FL).
	RungModelFL
	// RungMinPower abandons performance and pins the minimum
	// predicted-power configuration — the conservative floor a node
	// falls to when its sensors or predictions cannot be trusted.
	RungMinPower
)

// String names the rung.
func (r Rung) String() string {
	switch r {
	case RungModel:
		return "model"
	case RungModelFL:
		return "model+fl"
	case RungMinPower:
		return "min-power"
	}
	return fmt.Sprintf("Rung(%d)", int(r))
}

// Watchdog defaults.
const (
	defaultDivergeFrac    = 0.35
	defaultDemoteAfter    = 2
	defaultPromoteAfter   = 4
	defaultApplyRetries   = 3
	defaultMeasureRetries = 2
)

// Step reports one executed kernel iteration.
type Step struct {
	Kernel    string
	Phase     Phase
	Config    apu.Config
	Cluster   int // valid from PhasePinned on; -1 before
	TimeSec   float64
	PowerW    float64
	EnergyJ   float64
	UnderCap  bool
	Iteration int

	// Robustness annotations; zero values on clean runs.
	Rung Rung
	// Quarantined marks a step whose power reading failed the sanity
	// gate (implausible wattage): PowerW holds the model's estimate
	// instead of the sensor's claim, and the step is excluded from
	// Violations because the truth is unknown.
	Quarantined bool
	// SensorLost marks a step with no reading at all after bounded
	// dropout retries; PowerW likewise falls back to the estimate.
	SensorLost bool
}

// Trusted reports whether the step's power reading came from a
// healthy sensor.
func (s Step) Trusted() bool { return !s.Quarantined && !s.SensorLost }

// kernelState tracks one kernel's adaptation.
type kernelState struct {
	iter      int
	cpuSample profiler.Sample
	gpuSample profiler.Sample
	cluster   int
	frontier  *pareto.Frontier
	preds     []core.Prediction
	pinned    apu.Config
	pinnedCap float64 // cap the pin was chosen for

	// Degradation-ladder state, meaningful only when the watchdog is
	// armed (Options.Watchdog or a fault plan).
	rung          Rung
	baseRung      Rung // rung recovery stops at (ModelFL when FL opt is on)
	minPowerID    int  // config ID of the min predicted-power floor
	healthy       int  // consecutive healthy pinned iterations
	unhealthy     int  // consecutive unhealthy pinned iterations
	div           core.DivergenceTracker
	applied       *apu.Config // config the hardware actually holds
	demotions     int
	recoveries    int
	quarantined   int
	dropouts      int
	applyRetries  int
	applyFailures int
	backoffSec    float64
}

// KernelHealth is one kernel's robustness state, surfaced through
// Summary.Health when the watchdog is armed.
type KernelHealth struct {
	// Rung is where the kernel currently sits on the degradation
	// ladder.
	Rung Rung
	// Demotions and Recoveries count ladder moves down and back up.
	Demotions  int
	Recoveries int
	// Quarantined counts readings rejected by the sanity gate;
	// Dropouts counts sensor dropout events (including retried reads).
	Quarantined int
	Dropouts    int
	// ApplyRetries and ApplyFailures count P-state transition retries
	// and attempts that exhausted the retry budget; BackoffSec is the
	// cumulative booked retry backoff.
	ApplyRetries  int
	ApplyFailures int
	BackoffSec    float64
	// Divergence is the kernel's current smoothed
	// |measured−predicted|/predicted power error.
	Divergence float64
}

// Runtime executes kernels adaptively.
type Runtime struct {
	prof  *profiler.Profiler
	model *core.Model
	pm    *acpi.Manager
	opts  Options

	mu      sync.Mutex
	capW    float64
	kernels map[string]*kernelState
	steps   []Step
}

// ErrNoModel is returned when constructing a runtime without a model.
var ErrNoModel = errors.New("rts: nil model")

// ErrBadCap is returned when a power cap is NaN, infinite, or not
// positive.
var ErrBadCap = errors.New("rts: power cap must be a positive finite wattage")

func validCapW(w float64) error {
	if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
		return fmt.Errorf("%w: got %v", ErrBadCap, w)
	}
	return nil
}

// New creates a runtime over a trained model. A fault plan in the
// options is wired through to the profiler's hardware seams and the
// P-state manager.
func New(model *core.Model, opts Options) (*Runtime, error) {
	if model == nil {
		return nil, ErrNoModel
	}
	if err := validCapW(opts.CapW); err != nil {
		return nil, err
	}
	rt := &Runtime{
		prof:    profiler.New(),
		model:   model,
		pm:      acpi.NewManager(),
		opts:    opts,
		capW:    opts.CapW,
		kernels: map[string]*kernelState{},
	}
	rt.prof.Faults = opts.Faults
	rt.pm.SetFaultInjector(opts.Faults)
	return rt, nil
}

// ladderArmed reports whether the watchdog and degradation ladder are
// active. They arm automatically under fault injection; with them off
// the runtime's behaviour is bit-identical to the pre-robustness
// implementation.
func (rt *Runtime) ladderArmed() bool { return rt.opts.Watchdog || rt.opts.Faults != nil }

func (rt *Runtime) divergeFrac() float64 {
	if rt.opts.DivergeFrac > 0 {
		return rt.opts.DivergeFrac
	}
	return defaultDivergeFrac
}

func (rt *Runtime) demoteAfter() int {
	if rt.opts.DemoteAfter > 0 {
		return rt.opts.DemoteAfter
	}
	return defaultDemoteAfter
}

func (rt *Runtime) promoteAfter() int {
	if rt.opts.PromoteAfter > 0 {
		return rt.opts.PromoteAfter
	}
	return defaultPromoteAfter
}

func (rt *Runtime) applyRetryBudget() int {
	if rt.opts.MaxApplyRetries > 0 {
		return rt.opts.MaxApplyRetries
	}
	return defaultApplyRetries
}

func (rt *Runtime) measureRetryBudget() int {
	if rt.opts.MaxMeasureRetries > 0 {
		return rt.opts.MaxMeasureRetries
	}
	return defaultMeasureRetries
}

// Profiler exposes the measurement history (the paper: "a history of
// performance and power measurements is made accessible to the
// application or runtime").
func (rt *Runtime) Profiler() *profiler.Profiler { return rt.prof }

// PStates exposes the ACPI manager, for inspecting DVFS state.
func (rt *Runtime) PStates() *acpi.Manager { return rt.pm }

// SetCap updates the power cap. Already-pinned kernels re-select from
// their cached predicted frontiers on their next iteration. NaN,
// infinite, and non-positive wattages are rejected: a NaN cap would
// silently disable every under-cap comparison downstream.
func (rt *Runtime) SetCap(w float64) error {
	if err := validCapW(w); err != nil {
		return err
	}
	rt.mu.Lock()
	rt.capW = w
	rt.mu.Unlock()
	return nil
}

// Cap returns the current power cap.
func (rt *Runtime) Cap() float64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.capW
}

// RunKernel executes the next iteration of kernel k under the runtime's
// adaptation policy and returns the step record.
func (rt *Runtime) RunKernel(k kernels.Kernel) (Step, error) {
	return rt.RunKernelAt(k, "")
}

// RunKernelAt is RunKernel with an explicit call-site context: the
// paper's §VI extension ("the runtime could use call stacks to
// differentiate between invocations of the same kernel from distinct
// points in the application"). Distinct call sites adapt independently
// — each gets its own sampling iterations, classification, and pinned
// configuration — because the same kernel invoked from different phases
// often sees different inputs.
func (rt *Runtime) RunKernelAt(k kernels.Kernel, callsite string) (Step, error) {
	key := k.ID()
	if callsite != "" {
		key += "@" + callsite
	}
	rt.mu.Lock()
	st, ok := rt.kernels[key]
	if !ok {
		st = &kernelState{cluster: -1, minPowerID: -1}
		if rt.opts.FL {
			st.rung = RungModelFL
		}
		st.baseRung = st.rung
		rt.kernels[key] = st
	}
	capW := rt.capW
	rt.mu.Unlock()

	var step Step
	switch {
	case st.iter == 0:
		s, meta, err := rt.runSample(k, st, apu.SampleConfigCPU(), 0)
		if err != nil {
			return Step{}, err
		}
		st.cpuSample = s
		step = rt.recordStep(k, st, PhaseSampleCPU, s, capW, meta)
	case st.iter == 1:
		s, meta, err := rt.runSample(k, st, apu.SampleConfigGPU(), 1)
		if err != nil {
			return Step{}, err
		}
		st.gpuSample = s
		if err := rt.adapt(st, capW); err != nil {
			return Step{}, err
		}
		step = rt.recordStep(k, st, PhaseSampleGPU, s, capW, meta)
	default:
		s, err := rt.runPinned(k, st, key, capW)
		if err != nil {
			return Step{}, err
		}
		step = s
	}
	st.iter++
	return step, nil
}

// runSample executes one sampling iteration. With the watchdog armed,
// sensor dropouts are re-read (bounded) and persistent sensor
// failures are tolerated rather than fatal: the degraded sample — zero
// power after a dropout, the claimed wattage after an implausible
// reading — flows into classification, and the resulting misprediction
// is exactly what the degradation ladder exists to catch.
func (rt *Runtime) runSample(k kernels.Kernel, st *kernelState, cfg apu.Config, iter int) (profiler.Sample, stepMeta, error) {
	if !rt.ladderArmed() {
		s, err := rt.prof.RunConfig(k, cfg, iter)
		return s, stepMeta{}, err
	}
	s, err := rt.prof.RunConfigAttempt(k, cfg, iter, 0)
	for a := 1; errors.Is(err, power.ErrSensorDropout) && a <= rt.measureRetryBudget(); a++ {
		st.dropouts++
		mDropouts.Inc()
		s, err = rt.prof.RunConfigAttempt(k, cfg, iter, a)
	}
	meta := stepMeta{rung: st.rung}
	switch {
	case err == nil:
	case errors.Is(err, power.ErrSensorDropout):
		st.dropouts++
		mDropouts.Inc()
		meta.sensorLost = true
	case errors.Is(err, power.ErrImplausibleReading):
		st.quarantined++
		mQuarantined.Inc()
		meta.quarantined = true
	default:
		return s, meta, err
	}
	return s, meta, nil
}

// runPinned executes one pinned iteration: re-selection on cap change,
// the P-state apply (with bounded retry under faults), the measured
// run (with dropout re-reads and the sanity gate), the feedback
// limiter, and the watchdog's health bookkeeping.
func (rt *Runtime) runPinned(k kernels.Kernel, st *kernelState, key string, capW float64) (Step, error) {
	armed := rt.ladderArmed()
	if !stats.AlmostEqual(st.pinnedCap, capW) {
		// Cap changed: re-walk the cached frontier (no re-profiling).
		if err := rt.reselect(st, capW); err != nil {
			return Step{}, err
		}
		st.div.Reset()
	}

	runCfg := st.pinned
	if !armed {
		if err := rt.pm.Apply(st.pinned); err != nil {
			return Step{}, err
		}
	} else if err := rt.applyWithRetry(st, key); err != nil {
		if !errors.Is(err, acpi.ErrTransitionFailed) {
			return Step{}, err
		}
		// Retry budget exhausted: the transition never happened, so the
		// hardware kept whatever configuration it last held. Run there
		// and let the watchdog see the consequences.
		st.applyFailures++
		mApplyFailures.Inc()
		if st.applied != nil {
			runCfg = *st.applied
		}
	} else {
		cp := st.pinned
		st.applied = &cp
	}

	var s profiler.Sample
	var err error
	if !armed {
		s, err = rt.prof.RunConfig(k, st.pinned, st.iter)
		if err != nil {
			return Step{}, err
		}
	} else {
		s, err = rt.prof.RunConfigAttempt(k, runCfg, st.iter, 0)
		for a := 1; errors.Is(err, power.ErrSensorDropout) && a <= rt.measureRetryBudget(); a++ {
			st.dropouts++
			mDropouts.Inc()
			s, err = rt.prof.RunConfigAttempt(k, runCfg, st.iter, a)
		}
	}
	meta := stepMeta{rung: st.rung}
	switch {
	case err == nil:
	case errors.Is(err, power.ErrSensorDropout):
		st.dropouts++
		mDropouts.Inc()
		meta.sensorLost = true
	case errors.Is(err, power.ErrImplausibleReading):
		st.quarantined++
		mQuarantined.Inc()
		meta.quarantined = true
	default:
		return Step{}, err
	}
	trusted := err == nil
	if !trusted {
		// Sanity gate: the reading is quarantined. Control decisions and
		// energy accounting fall back to the model's prediction for the
		// configuration that actually ran.
		meta.estimateW = rt.predictedW(st, runCfg)
	}

	measured := s.TotalPowerW()
	flActive := rt.opts.FL || (armed && st.rung >= RungModelFL)
	if flActive && trusted && measured > capW {
		// Feedback: step the pinned configuration down for future
		// iterations (GPU knob first on GPU configs, then CPU).
		policy := rapl.PolicyCPU
		if st.pinned.Device == apu.GPUDevice {
			policy = rapl.PolicyGPU
		}
		if next, changed := rapl.Step(st.pinned, rapl.StepDown, policy); changed {
			st.pinned = next
		}
	}

	if armed {
		if trusted {
			st.div.Observe(rt.predictedW(st, runCfg), measured)
			mDivergence.Set(st.div.Value())
			if measured > capW || st.div.Diverged(rt.divergeFrac()) {
				st.unhealthy++
				st.healthy = 0
			} else {
				st.healthy++
				st.unhealthy = 0
			}
		} else {
			// A blind iteration cannot confirm the cap held; it counts
			// against the kernel's health.
			st.unhealthy++
			st.healthy = 0
		}
		if st.unhealthy >= rt.demoteAfter() {
			rt.demote(st, capW)
		} else if st.rung > st.baseRung && st.healthy >= rt.promoteAfter() {
			rt.promote(st, capW)
		}
	}
	return rt.recordStep(k, st, PhasePinned, s, capW, meta), nil
}

// applyWithRetry drives the pinned configuration into the P-state
// manager, retrying transient transition failures up to the retry
// budget. Each retry is a fresh deterministic fault event (the attempt
// ordinal keys it), and the exponential backoff between attempts is
// booked into the kernel's health record rather than slept — the
// simulation has no wall clock.
func (rt *Runtime) applyWithRetry(st *kernelState, key string) error {
	evKey := fmt.Sprintf("%s#i%d", key, st.iter)
	budget := rt.applyRetryBudget()
	var err error
	for attempt := 0; attempt <= budget; attempt++ {
		if attempt > 0 {
			st.applyRetries++
			mPStateRetries.Inc()
			st.backoffSec += acpi.TransitionLatencySec * float64(int(1)<<uint(attempt-1))
		}
		err = rt.pm.ApplyFor(st.pinned, evKey, attempt)
		if err == nil || !errors.Is(err, acpi.ErrTransitionFailed) {
			return err
		}
	}
	return err
}

// demote walks the kernel one rung down the ladder and, at the
// bottom, pins the minimum predicted-power configuration.
func (rt *Runtime) demote(st *kernelState, capW float64) {
	st.unhealthy, st.healthy = 0, 0
	if st.rung >= RungMinPower {
		return
	}
	st.rung++
	st.demotions++
	mLadderTransitions.With("demote").Inc()
	st.div.Reset()
	if st.rung == RungMinPower && st.minPowerID >= 0 {
		if cfg, err := rt.model.Space.ByID(st.minPowerID); err == nil {
			st.pinned = cfg
			st.pinnedCap = capW
		}
	}
}

// promote walks the kernel one rung back up after sustained healthy
// readings and re-selects the configuration for the restored rung.
func (rt *Runtime) promote(st *kernelState, capW float64) {
	st.unhealthy, st.healthy = 0, 0
	if st.rung <= st.baseRung {
		return
	}
	st.rung--
	st.recoveries++
	st.div.Reset()
	if err := rt.reselect(st, capW); err != nil {
		// reselect only fails before adaptation; stay demoted.
		st.rung++
		st.recoveries--
		return
	}
	mLadderTransitions.With("promote").Inc()
}

// predictedW returns the model's predicted package power for cfg, or
// NaN if the kernel has no cached prediction for it.
func (rt *Runtime) predictedW(st *kernelState, cfg apu.Config) float64 {
	id := rt.model.Space.IDOf(cfg)
	if id < 0 {
		return math.NaN()
	}
	// Predictions are cached in config-ID order, but scan as a
	// fallback in case that invariant ever changes.
	if id < len(st.preds) && st.preds[id].ConfigID == id {
		return st.preds[id].PowerW
	}
	for _, p := range st.preds {
		if p.ConfigID == id {
			return p.PowerW
		}
	}
	return math.NaN()
}

// adapt classifies the kernel from its two samples, caches predictions
// and the predicted frontier, and pins the initial configuration.
func (rt *Runtime) adapt(st *kernelState, capW float64) error {
	sr := core.SampleRuns{CPU: st.cpuSample, GPU: st.gpuSample}
	frontier, preds, err := rt.model.PredictedFrontier(sr)
	if err != nil {
		return err
	}
	cluster, err := rt.model.Classify(sr)
	if err != nil {
		return err
	}
	st.cluster = cluster
	st.frontier = frontier
	st.preds = preds
	st.minPowerID = minPowerConfig(preds)
	return rt.reselect(st, capW)
}

// minPowerConfig finds the minimum predicted-power configuration — the
// ladder's conservative floor. NaN predictions never win a < race, so
// a poisoned prediction set still yields a deterministic pick.
func minPowerConfig(preds []core.Prediction) int {
	bestID := -1
	minW := -1.0
	for _, p := range preds {
		if bestID < 0 || p.PowerW < minW {
			minW, bestID = p.PowerW, p.ConfigID
		}
	}
	return bestID
}

// reselect picks the pinned configuration from cached predictions for
// the current cap.
func (rt *Runtime) reselect(st *kernelState, capW float64) error {
	if st.preds == nil {
		return errors.New("rts: reselect before adaptation")
	}
	bestID := -1
	if rt.opts.VarAwareZ > 0 {
		best := -1.0
		for _, p := range st.preds {
			if p.PowerW+rt.opts.VarAwareZ*p.PowerStd <= capW && p.Perf > best {
				best, bestID = p.Perf, p.ConfigID
			}
		}
	} else if pt, ok := st.frontier.BestUnderCap(capW); ok {
		bestID = pt.ID
	}
	if bestID < 0 {
		// Fall back to the minimum predicted power configuration.
		bestID = minPowerConfig(st.preds)
		mReselectFallback.Inc()
	}
	if rt.ladderArmed() && st.rung == RungMinPower && st.minPowerID >= 0 {
		// A kernel on the bottom rung stays floored at minimum power
		// regardless of what the cap would allow — recovery goes
		// through promote, not through a cap change.
		bestID = st.minPowerID
	}
	cfg, err := rt.model.Space.ByID(bestID)
	if err != nil {
		return err
	}
	st.pinned = cfg
	st.pinnedCap = capW
	return nil
}

// stepMeta carries per-step robustness annotations into recordStep.
type stepMeta struct {
	rung        Rung
	quarantined bool
	sensorLost  bool
	// estimateW replaces the sensor's claim in the step record when
	// the reading was quarantined or lost (the model's prediction for
	// the configuration that ran, or 0 when none exists yet).
	estimateW float64
}

func (rt *Runtime) recordStep(k kernels.Kernel, st *kernelState, ph Phase, s profiler.Sample, capW float64, meta stepMeta) Step {
	powerW := s.TotalPowerW()
	if meta.quarantined || meta.sensorLost {
		powerW = meta.estimateW
		if math.IsNaN(powerW) || math.IsInf(powerW, 0) || powerW < 0 {
			powerW = 0
		}
	}
	step := Step{
		Kernel:      k.ID(),
		Phase:       ph,
		Config:      s.Config,
		Cluster:     st.cluster,
		TimeSec:     s.TimeSec,
		PowerW:      powerW,
		EnergyJ:     powerW * s.TimeSec,
		UnderCap:    powerW <= capW,
		Iteration:   st.iter,
		Rung:        meta.rung,
		Quarantined: meta.quarantined,
		SensorLost:  meta.sensorLost,
	}
	mSteps.With(ph.String()).Inc()
	if step.Trusted() && !step.UnderCap {
		mCapViolations.Inc()
	}
	rt.mu.Lock()
	rt.steps = append(rt.steps, step)
	rt.mu.Unlock()
	return step
}

// Steps returns all executed steps in order.
func (rt *Runtime) Steps() []Step {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]Step(nil), rt.steps...)
}

// Summary aggregates a run.
type Summary struct {
	Steps        int
	TimeSec      float64
	EnergyJ      float64
	Violations   int
	PinnedSteps  int
	SampledSteps int

	// Robustness accounting; all zero (and Health nil) on clean runs
	// with the watchdog disarmed.
	Quarantined   int
	SensorLost    int
	Demotions     int
	Recoveries    int
	ApplyRetries  int
	ApplyFailures int
	// Health maps each kernel key to its ladder state.
	Health map[string]KernelHealth
}

// Summarize reduces the step history. Steps whose readings were
// quarantined or lost are excluded from Violations — the truth is
// unknown — and counted separately.
func (rt *Runtime) Summarize() Summary {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var sum Summary
	for _, s := range rt.steps {
		sum.Steps++
		sum.TimeSec += s.TimeSec
		sum.EnergyJ += s.EnergyJ
		switch {
		case s.Quarantined:
			sum.Quarantined++
		case s.SensorLost:
			sum.SensorLost++
		case !s.UnderCap:
			sum.Violations++
		}
		if s.Phase == PhasePinned {
			sum.PinnedSteps++
		} else {
			sum.SampledSteps++
		}
	}
	if rt.ladderArmed() {
		sum.Health = make(map[string]KernelHealth, len(rt.kernels))
		for key, st := range rt.kernels {
			h := rt.healthOf(st)
			sum.Health[key] = h
			sum.Demotions += h.Demotions
			sum.Recoveries += h.Recoveries
			sum.ApplyRetries += h.ApplyRetries
			sum.ApplyFailures += h.ApplyFailures
		}
	}
	return sum
}

func (rt *Runtime) healthOf(st *kernelState) KernelHealth {
	return KernelHealth{
		Rung:          st.rung,
		Demotions:     st.demotions,
		Recoveries:    st.recoveries,
		Quarantined:   st.quarantined,
		Dropouts:      st.dropouts,
		ApplyRetries:  st.applyRetries,
		ApplyFailures: st.applyFailures,
		BackoffSec:    st.backoffSec,
		Divergence:    st.div.Value(),
	}
}

// HealthFor returns the ladder state of one kernel key (ok=false for
// unknown kernels).
func (rt *Runtime) HealthFor(key string) (KernelHealth, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st, ok := rt.kernels[key]
	if !ok {
		return KernelHealth{}, false
	}
	return rt.healthOf(st), true
}

// SelectionFor returns the currently pinned configuration of a kernel
// (ok=false before its two sample iterations complete). For call-site
// differentiated kernels, pass "kernelID@callsite".
func (rt *Runtime) SelectionFor(kernelID string) (apu.Config, int, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st, ok := rt.kernels[kernelID]
	if !ok || st.iter < 2 {
		return apu.Config{}, -1, false
	}
	return st.pinned, st.cluster, true
}

// PredictionsFor returns the cached per-configuration predictions of an
// adapted kernel (ok=false before adaptation). Cluster-level budget
// policies consume these to build node utility curves without
// re-profiling (§I: constraints "passed down through the machine
// hierarchy").
func (rt *Runtime) PredictionsFor(key string) ([]core.Prediction, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st, ok := rt.kernels[key]
	if !ok || st.preds == nil {
		return nil, false
	}
	return append([]core.Prediction(nil), st.preds...), true
}

// AdaptedKernels lists the keys (kernel IDs, possibly with call-site
// suffixes) that have completed adaptation.
func (rt *Runtime) AdaptedKernels() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []string
	for key, st := range rt.kernels {
		if st.preds != nil {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}
