package fleet

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"acsel/internal/fault"
	"acsel/internal/hierarchy"
)

func dropAll() *fault.Injector {
	return fault.NewInjector(fault.Scenario{
		Name:  "drop-all",
		Rules: []fault.Rule{{Site: fault.SiteNet, Kind: fault.NetDrop, Prob: 1}},
	}, 1)
}

// TestClientDropNeverReachesPeer checks an injected drop fails the RPC
// before any bytes leave: the server must see zero requests, and the
// call must fail after exhausting its retries.
func TestClientDropNeverReachesPeer(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()
	cl := &Client{Faults: dropAll(), Retries: 2, Backoff: time.Millisecond}
	_, err := cl.Report(context.Background(), srv.URL, fault.EventKey("report/x", 0))
	if err == nil {
		t.Fatal("pull succeeded under a certain drop")
	}
	if got := hits.Load(); got != 0 {
		t.Fatalf("dropped RPC reached the server %d time(s)", got)
	}
}

// TestClientCorruptionRejected scrambles every response body and
// checks the pull fails decode/validation instead of returning a
// mangled report.
func TestClientCorruptionRejected(t *testing.T) {
	rep := Report{Version: ProtocolVersion, Name: "x", CapW: 20,
		Breakpoints: []float64{10, 20}, Utility: []float64{0.5, 1}}
	mux := http.NewServeMux()
	mux.HandleFunc(PathReport, func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rep)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	inj := fault.NewInjector(fault.Scenario{
		Name:  "corrupt-all",
		Rules: []fault.Rule{{Site: fault.SiteNet, Kind: fault.NetCorrupt, Prob: 1, Magnitude: 64}},
	}, 1)
	cl := &Client{Faults: inj, Retries: 1, Backoff: time.Millisecond}
	if _, err := cl.Report(context.Background(), srv.URL, fault.EventKey("report/x", 0)); err == nil {
		t.Fatal("pull returned a corrupted report as valid")
	}
	// Clean client against the same server: fine.
	if _, err := (&Client{}).Report(context.Background(), srv.URL, "k|0"); err != nil {
		t.Fatalf("clean pull failed: %v", err)
	}
}

// TestNetFlakyRoundsHoldInvariants runs several rebalance rounds under
// the net-flaky chaos scenario — drops, delays, and corruption on the
// RPC seam — and checks the budget invariant survives every partial
// round: the books never assign more than the budget, and no node ever
// runs below the floor.
func TestNetFlakyRoundsHoldInvariants(t *testing.T) {
	clock := newClock()
	members := startMembers(t, clock, 3, 20)
	const budget = 60.0
	inj, err := fault.ParsePlan("net-flaky:5")
	if err != nil {
		t.Fatal(err)
	}
	coord, url := startCoordinator(t, CoordinatorOptions{
		BudgetW: budget, Policy: hierarchy.WaterFill, LeaseTTL: time.Hour,
		Client: &Client{Faults: inj, Retries: 1, Backoff: time.Millisecond},
		Now:    clock.Now, Logf: t.Logf,
	})
	join(t, url, members)
	sawFailure := false
	for round := 0; round < 8; round++ {
		res, err := coord.RebalanceOnce(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.PullFailures > 0 || res.PushFailures > 0 {
			sawFailure = true
		}
		if res.AssignedTotalW > budget+budgetSlack {
			t.Fatalf("round %d: assigned %v exceeds budget %v", round, res.AssignedTotalW, budget)
		}
		for _, m := range members {
			if c := m.rt.Cap(); c < hierarchy.MinNodeCapW-1e-9 {
				t.Fatalf("round %d: %s runs at %v W, below floor", round, m.agent.Name(), c)
			}
		}
	}
	if !sawFailure {
		t.Log("net-flaky:5 injected no failures across 8 rounds; invariants checked anyway")
	}
	if st := coord.Status(); math.Abs(st.AssignedTotalW-budget) > budget {
		t.Fatalf("final assignment %v is not even near the budget", st.AssignedTotalW)
	}
}
