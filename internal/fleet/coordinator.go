package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"acsel/internal/checkpoint"
	"acsel/internal/fault"
	"acsel/internal/hierarchy"
)

// budgetSlack absorbs floating-point noise when checking the
// total-assignment invariant.
const budgetSlack = 1e-6

// CoordinatorOptions configures the fleet coordinator.
type CoordinatorOptions struct {
	// BudgetW is the fleet-wide power budget to divide.
	BudgetW float64
	// Policy selects the divider (uniform, demand-proportional,
	// water-fill).
	Policy hierarchy.Policy
	// LeaseTTL is how long a membership lasts without a heartbeat
	// (default 3s). Members past their lease are evicted at the start
	// of the next round and their watts redistributed.
	LeaseTTL time.Duration
	// RebalanceEvery is the Run loop period (default 1s).
	RebalanceEvery time.Duration
	// Journal, when non-empty, persists an assignment checkpoint after
	// every round; a restarted coordinator resumes membership and round
	// counter from it.
	Journal string
	// CompactEvery rewrites the journal to a single record every this
	// many rounds (default 64) so it does not grow without bound.
	CompactEvery int
	// Client issues report pulls and cap pushes (a zero Client if nil).
	Client *Client
	// Logf receives round events (log.Printf if nil).
	Logf func(format string, args ...any)
	// Now is the clock (time.Now if nil); tests pin it.
	Now func() time.Time
}

// member is the coordinator's book entry for one node.
type member struct {
	name     string
	addr     string
	deadline time.Time
	// report is the last good report (nil before the first successful
	// pull; kept across pull failures so a flaky node divides on stale
	// rather than no information).
	report *Report
	// assignedW is the last cap this coordinator successfully pushed;
	// 0 means never pushed.
	assignedW float64
}

// Coordinator maintains lease-based fleet membership and runs the
// rebalance loop: pull reports in parallel, divide the budget with the
// hierarchy dividers, push caps transactionally (decreases before
// increases, so the fleet total never exceeds the budget mid-round).
type Coordinator struct {
	opts CoordinatorOptions

	mu        sync.Mutex
	members   map[string]*member
	round     int
	evictions int
	recovered bool
	journal   *checkpoint.Writer
}

// NewCoordinator validates options and, when a journal is configured,
// restores the last checkpointed assignment: members come back with
// their previous caps on the books and one fresh lease TTL of grace to
// heartbeat again.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if math.IsNaN(opts.BudgetW) || math.IsInf(opts.BudgetW, 0) || opts.BudgetW < hierarchy.MinNodeCapW {
		return nil, fmt.Errorf("fleet: budget %v W cannot fund even one node (floor %v W)",
			opts.BudgetW, hierarchy.MinNodeCapW)
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 3 * time.Second
	}
	if opts.RebalanceEvery <= 0 {
		opts.RebalanceEvery = time.Second
	}
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = 64
	}
	if opts.Client == nil {
		opts.Client = &Client{}
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	c := &Coordinator{opts: opts, members: map[string]*member{}}
	if opts.Journal != "" {
		w, recs, err := checkpoint.OpenAppend(opts.Journal)
		if err != nil {
			return nil, fmt.Errorf("fleet: open journal: %w", err)
		}
		c.journal = w
		if cp, ok := LastAssignment(recs); ok {
			grace := opts.Now().Add(opts.LeaseTTL)
			for _, m := range cp.Members {
				c.members[m.Name] = &member{
					name: m.Name, addr: m.Addr, deadline: grace, assignedW: m.AssignedW,
				}
				mNodeCapWatts.With(m.Name).Set(m.AssignedW)
			}
			c.round = cp.Round
			c.recovered = true
			mRestores.Inc()
			opts.Logf("fleet coordinator: resumed at round %d with %d member(s) from %s",
				cp.Round, len(cp.Members), opts.Journal)
			if cp.BudgetW != opts.BudgetW { //lint:ignore floatcmp exact flag-value comparison, only to warn the operator of a changed budget
				opts.Logf("fleet coordinator: budget changed across restart: %.1f W -> %.1f W",
					cp.BudgetW, opts.BudgetW)
			}
		}
	}
	return c, nil
}

// Close releases the journal.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return nil
	}
	err := c.journal.Close()
	c.journal = nil
	return err
}

// Recovered reports whether this coordinator resumed from a journal.
func (c *Coordinator) Recovered() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recovered
}

// Round returns the number of completed rebalance rounds.
func (c *Coordinator) Round() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.round
}

// Register installs the coordinator's HTTP handlers (PathHeartbeat,
// PathMembers) on a mux.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc(PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc(PathMembers, c.handleMembers)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var hb Heartbeat
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBodyBytes)).Decode(&hb); err != nil {
		http.Error(w, "bad heartbeat: "+err.Error(), http.StatusBadRequest)
		return
	}
	if hb.Version != ProtocolVersion {
		http.Error(w, fmt.Sprintf("heartbeat version %d (want %d)", hb.Version, ProtocolVersion),
			http.StatusBadRequest)
		return
	}
	if hb.Name == "" || hb.Addr == "" {
		http.Error(w, "heartbeat needs name and addr", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	m, ok := c.members[hb.Name]
	if !ok {
		m = &member{name: hb.Name}
		c.members[hb.Name] = m
		mJoins.Inc()
		c.opts.Logf("fleet coordinator: %s joined from %s", hb.Name, hb.Addr)
	}
	m.addr = hb.Addr
	m.deadline = c.opts.Now().Add(c.opts.LeaseTTL)
	assigned := m.assignedW
	c.mu.Unlock()
	mHeartbeats.Inc()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(HeartbeatResponse{
		LeaseMillis: c.opts.LeaseTTL.Milliseconds(),
		AssignedW:   assigned,
	})
}

func (c *Coordinator) handleMembers(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(c.Status())
}

// Status snapshots the coordinator for diagnostics (GET PathMembers).
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	st := Status{
		Version:   ProtocolVersion,
		Round:     c.round,
		BudgetW:   c.opts.BudgetW,
		Policy:    c.opts.Policy.String(),
		Recovered: c.recovered,
		Evictions: c.evictions,
	}
	for _, name := range c.memberNamesLocked() {
		m := c.members[name]
		st.AssignedTotalW += m.assignedW
		st.Members = append(st.Members, MemberStatus{
			Name:         m.name,
			Addr:         m.addr,
			AssignedW:    m.assignedW,
			HasReport:    m.report != nil,
			LeaseSeconds: m.deadline.Sub(now).Seconds(),
		})
	}
	return st
}

// memberNamesLocked returns the member names sorted; c.mu must be held.
func (c *Coordinator) memberNamesLocked() []string {
	names := make([]string, 0, len(c.members))
	for name := range c.members {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RoundResult summarizes one rebalance round.
type RoundResult struct {
	// Round is the round number this result belongs to (0-based).
	Round int
	// Evicted names members whose leases expired this round.
	Evicted []string
	// Caps holds the cap per member that acknowledged a push this
	// round.
	Caps map[string]float64
	// PullFailures and PushFailures count members whose report pull or
	// cap push failed after all retries.
	PullFailures int
	PushFailures int
	// AssignedTotalW is the fleet total on the books after the round.
	AssignedTotalW float64
}

// RebalanceOnce runs one full round: evict expired leases, pull every
// member's report in parallel, divide the budget over the reported
// curves, and push the new caps ordered decreases-first so the summed
// assignment stays within budget at every point of the push sequence —
// including when a push in the middle fails.
func (c *Coordinator) RebalanceOnce(ctx context.Context) (RoundResult, error) {
	defer mRebalanceSeconds.Time()()

	c.mu.Lock()
	round := c.round
	res := RoundResult{Round: round, Caps: map[string]float64{}}
	now := c.opts.Now()
	for _, name := range c.memberNamesLocked() {
		if now.After(c.members[name].deadline) {
			delete(c.members, name)
			res.Evicted = append(res.Evicted, name)
			c.evictions++
			mEvictions.Inc()
			mNodeCapWatts.With(name).Set(0)
		}
	}
	type pullTarget struct {
		name, addr string
	}
	var targets []pullTarget
	for _, name := range c.memberNamesLocked() {
		m := c.members[name]
		targets = append(targets, pullTarget{m.name, m.addr})
	}
	c.mu.Unlock()
	for _, name := range res.Evicted {
		c.opts.Logf("fleet coordinator: round %d: evicted %s (lease expired); its watts return to the pool",
			round, name)
	}
	if len(targets) == 0 {
		c.finishRound(&res)
		return res, nil
	}

	// Pull reports in parallel; each pull has its own timeout/retry
	// budget inside the client. Each goroutine writes only its own
	// slice index.
	reports := make([]*Report, len(targets))
	failed := make([]bool, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t pullTarget) {
			defer wg.Done()
			rep, err := c.opts.Client.Report(ctx, t.addr, fault.EventKey("report/"+t.name, round))
			if err != nil {
				failed[i] = true
				c.opts.Logf("fleet coordinator: round %d: pull from %s failed: %v", round, t.name, err)
				return
			}
			if rep.Name != t.name {
				failed[i] = true
				c.opts.Logf("fleet coordinator: round %d: %s reported as %q; ignoring", round, t.name, rep.Name)
				return
			}
			reports[i] = &rep
		}(i, t)
	}
	wg.Wait()
	for _, f := range failed {
		if f {
			mPullFailures.Inc()
			res.PullFailures++
		}
	}

	// Fold fresh reports into the books and build the divider views in
	// name order; a member with no report yet divides as an empty view.
	type pushTarget struct {
		name, addr      string
		current, target float64
	}
	var pushes []pushTarget
	c.mu.Lock()
	var views []hierarchy.NodeView
	for i, t := range targets {
		m, ok := c.members[t.name]
		if !ok { // evicted or replaced mid-pull
			continue
		}
		if reports[i] != nil {
			m.report = reports[i]
		}
		rep := Report{Version: ProtocolVersion, Name: m.name}
		if m.report != nil {
			rep = *m.report
		}
		views = append(views, rep.View())
		cur := m.assignedW
		if cur <= 0 && m.report != nil {
			cur = m.report.CapW // never pushed: the node's own local cap, from its report
		}
		pushes = append(pushes, pushTarget{name: m.name, addr: m.addr, current: cur})
	}
	budget, policy := c.opts.BudgetW, c.opts.Policy
	c.mu.Unlock()
	if len(views) == 0 {
		c.finishRound(&res)
		return res, nil
	}

	caps, err := hierarchy.Divide(policy, views, budget)
	if err != nil {
		// Typically: more members than the budget can floor-fund. The
		// round still advances; the fleet keeps its previous caps.
		c.finishRound(&res)
		return res, fmt.Errorf("fleet: round %d: divide over %d member(s): %w", round, len(views), err)
	}
	for i := range pushes {
		pushes[i].target = caps[i]
	}

	// Transactional push: decreases first, so the running total never
	// exceeds max(budget, the pre-round total) and — once the decreases
	// have landed — never exceeds the budget. An increase is skipped if
	// an earlier failed decrease would leave it unaffordable.
	sort.Slice(pushes, func(i, j int) bool {
		di, dj := pushes[i].target-pushes[i].current, pushes[j].target-pushes[j].current
		if di != dj { //lint:ignore floatcmp plain ordering of two float deltas; ties fall through to the name tie-break
			return di < dj
		}
		return pushes[i].name < pushes[j].name
	})
	total := 0.0
	for _, p := range pushes {
		total += p.current
	}
	for _, p := range pushes {
		delta := p.target - p.current
		if delta > 0 && total+delta > budget+budgetSlack {
			mPushFailures.Inc()
			res.PushFailures++
			c.opts.Logf("fleet coordinator: round %d: holding back %.1f W raise for %s (total %.1f W would exceed budget %.1f W)",
				round, delta, p.name, total+delta, budget)
			continue
		}
		creq := CapRequest{Version: ProtocolVersion, CapW: p.target, Round: round}
		if _, err := c.opts.Client.PushCap(ctx, p.addr, creq, fault.EventKey("cap/"+p.name, round)); err != nil {
			mPushFailures.Inc()
			res.PushFailures++
			c.opts.Logf("fleet coordinator: round %d: cap push to %s failed (%v); node keeps %.1f W and its local ladder",
				round, p.name, err, p.current)
			continue
		}
		total += delta
		res.Caps[p.name] = p.target
		mPushes.Inc()
		mNodeCapWatts.With(p.name).Set(p.target)
		c.mu.Lock()
		if m, ok := c.members[p.name]; ok {
			m.assignedW = p.target
		}
		c.mu.Unlock()
	}

	c.finishRound(&res)
	return res, nil
}

// finishRound advances the round counter, refreshes the fleet-total
// gauge, and checkpoints the assignment.
func (c *Coordinator) finishRound(res *RoundResult) {
	c.mu.Lock()
	c.round++
	cp := AssignmentCheckpoint{
		Round:   c.round,
		BudgetW: c.opts.BudgetW,
		Policy:  c.opts.Policy.String(),
	}
	total := 0.0
	for _, name := range c.memberNamesLocked() {
		m := c.members[name]
		total += m.assignedW
		cp.Members = append(cp.Members, MemberCheckpoint{Name: m.name, Addr: m.addr, AssignedW: m.assignedW})
	}
	res.AssignedTotalW = total
	journal := c.journal
	compact := c.opts.CompactEvery > 0 && c.round%c.opts.CompactEvery == 0
	c.mu.Unlock()
	mAssignedWatts.Set(total)
	mRounds.Inc()

	if journal == nil {
		return
	}
	rec, err := EncodeAssignment(cp)
	if err != nil {
		c.opts.Logf("fleet coordinator: checkpoint encode failed: %v", err)
		return
	}
	if compact {
		if err := checkpoint.WriteAtomic(c.opts.Journal, []checkpoint.Record{rec}); err != nil {
			c.opts.Logf("fleet coordinator: journal compaction failed: %v", err)
		}
		// Reopen so subsequent appends extend the compacted file.
		w, _, err := checkpoint.OpenAppend(c.opts.Journal)
		if err != nil {
			c.opts.Logf("fleet coordinator: journal reopen after compaction failed: %v", err)
			return
		}
		c.mu.Lock()
		if c.journal != nil {
			_ = c.journal.Close()
		}
		c.journal = w
		c.mu.Unlock()
		mCheckpoints.Inc()
		return
	}
	if err := journal.Append(rec); err != nil {
		c.opts.Logf("fleet coordinator: checkpoint append failed: %v", err)
		return
	}
	_ = journal.Sync()
	mCheckpoints.Inc()
}

// Run drives the rebalance loop until the context ends. Errors from
// individual rounds (e.g. a budget temporarily below the member floor)
// are logged, not fatal: membership churn can fix them by the next
// round. Returns nil on context cancellation.
func (c *Coordinator) Run(ctx context.Context) error {
	t := time.NewTicker(c.opts.RebalanceEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
		}
		if _, err := c.RebalanceOnce(ctx); err != nil {
			c.opts.Logf("fleet coordinator: %v", err)
		}
	}
}
