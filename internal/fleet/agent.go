package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"sync"
	"time"

	"acsel/internal/hierarchy"
	"acsel/internal/kernels"
	"acsel/internal/rts"
)

// AgentOptions configures a node's fleet membership.
type AgentOptions struct {
	// Coordinator is the coordinator's base URL ("http://host:port").
	// Empty disables the heartbeat loop: the agent still serves reports
	// and accepts cap pushes, it just never joins a fleet on its own.
	Coordinator string
	// HeartbeatEvery is the lease-renewal period (default 1s). Keep it
	// well under the coordinator's lease TTL.
	HeartbeatEvery time.Duration
	// OrphanAfter is how long the agent tolerates no coordinator
	// contact (no successful heartbeat, no accepted cap push) before it
	// orphans itself: it drops its own cap to FloorW, where the
	// runtime's min-power degradation ladder keeps the node safe while
	// it keeps retrying. Default 5× HeartbeatEvery.
	OrphanAfter time.Duration
	// FloorW is the orphan fallback cap (default hierarchy.MinNodeCapW).
	FloorW float64
	// Client issues heartbeats (a zero Client if nil).
	Client *Client
	// Logf receives membership events (log.Printf if nil).
	Logf func(format string, args ...any)
	// Now is the clock (time.Now if nil); tests pin it.
	Now func() time.Time
}

// Agent is one node's side of the fleet protocol: it serves the node's
// Report, applies coordinator cap pushes, renews its membership lease,
// and falls back to the floor cap when the coordinator disappears.
type Agent struct {
	name string
	node *hierarchy.Node
	opts AgentOptions

	mu          sync.Mutex
	lastContact time.Time
	orphaned    bool
}

// NewAgent wraps a runtime and its application kernels as a fleet
// member.
func NewAgent(name string, rt *rts.Runtime, app []kernels.Kernel, opts AgentOptions) (*Agent, error) {
	if name == "" {
		return nil, fmt.Errorf("fleet: agent needs a node name")
	}
	if rt == nil {
		return nil, fmt.Errorf("fleet: agent %s needs a runtime", name)
	}
	if len(app) == 0 {
		return nil, fmt.Errorf("fleet: agent %s needs application kernels", name)
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = time.Second
	}
	if opts.OrphanAfter <= 0 {
		opts.OrphanAfter = 5 * opts.HeartbeatEvery
	}
	if opts.FloorW <= 0 {
		opts.FloorW = hierarchy.MinNodeCapW
	}
	if opts.Client == nil {
		opts.Client = &Client{}
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	a := &Agent{
		name: name,
		node: &hierarchy.Node{Name: name, Runtime: rt, App: app},
		opts: opts,
	}
	a.lastContact = opts.Now()
	return a, nil
}

// Name returns the agent's node name.
func (a *Agent) Name() string { return a.name }

// Report samples the node into its wire form: the demand summary and
// predicted utility curve the dividers consume, plus the current cap
// and learning diagnostics.
func (a *Agent) Report() Report {
	rt := a.node.Runtime
	r := ReportOf(hierarchy.View(a.node))
	r.CapW = rt.Cap()
	r.AdaptedKernels = len(rt.AdaptedKernels())
	r.Steps = len(rt.Steps())
	return r
}

// Orphaned reports whether the agent has lost the coordinator and
// dropped to its floor cap.
func (a *Agent) Orphaned() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.orphaned
}

// Register installs the agent's HTTP handlers (PathReport, PathCap) on
// a mux — in acsel-serve, the same mux that serves /metrics.
func (a *Agent) Register(mux *http.ServeMux) {
	mux.HandleFunc(PathReport, a.handleReport)
	mux.HandleFunc(PathCap, a.handleCap)
}

func (a *Agent) handleReport(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	mReportsServed.Inc()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(a.Report())
}

func (a *Agent) handleCap(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var cr CapRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBodyBytes)).Decode(&cr); err != nil {
		mCapsRejected.Inc()
		http.Error(w, "bad cap request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if cr.Version != ProtocolVersion {
		mCapsRejected.Inc()
		http.Error(w, fmt.Sprintf("cap request version %d (want %d)", cr.Version, ProtocolVersion),
			http.StatusBadRequest)
		return
	}
	if math.IsNaN(cr.CapW) || math.IsInf(cr.CapW, 0) || cr.CapW <= 0 {
		mCapsRejected.Inc()
		http.Error(w, fmt.Sprintf("cap %v is not a positive wattage", cr.CapW), http.StatusBadRequest)
		return
	}
	if err := a.node.Runtime.SetCap(cr.CapW); err != nil {
		mCapsRejected.Inc()
		http.Error(w, "runtime refused cap: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	mCapsApplied.Inc()
	a.touchContact()
	a.opts.Logf("fleet agent %s: cap %.1f W applied (round %d)", a.name, cr.CapW, cr.Round)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(CapResponse{Name: a.name, CapW: cr.CapW})
}

// touchContact records a successful coordinator exchange and clears
// any orphan state.
func (a *Agent) touchContact() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.lastContact = a.opts.Now()
	if a.orphaned {
		a.opts.Logf("fleet agent %s: coordinator is back", a.name)
		a.orphaned = false
	}
}

// Run drives the heartbeat loop until the context ends. selfURL is the
// base URL the coordinator should call back ("http://host:port" of the
// mux the agent registered on). Returns nil on context cancellation.
func (a *Agent) Run(ctx context.Context, selfURL string) error {
	if a.opts.Coordinator == "" {
		return fmt.Errorf("fleet: agent %s has no coordinator URL", a.name)
	}
	t := time.NewTicker(a.opts.HeartbeatEvery)
	defer t.Stop()
	for {
		a.heartbeat(ctx, selfURL)
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
		}
	}
}

func (a *Agent) heartbeat(ctx context.Context, selfURL string) {
	hb := Heartbeat{Version: ProtocolVersion, Name: a.name, Addr: selfURL}
	_, err := a.opts.Client.SendHeartbeat(ctx, a.opts.Coordinator, hb)
	if err != nil {
		if ctx.Err() != nil {
			return
		}
		mHeartbeatFailures.Inc()
		a.maybeOrphan(err)
		return
	}
	a.touchContact()
}

// maybeOrphan drops the node to its floor cap once the coordinator has
// been silent past OrphanAfter. The runtime's reselect under the floor
// walks the min-power degradation ladder, so the node lands on the
// cheapest configuration rather than an uncapped one — the safe side
// of a partitioned fleet.
func (a *Agent) maybeOrphan(cause error) {
	a.mu.Lock()
	silent := a.opts.Now().Sub(a.lastContact)
	already := a.orphaned
	if !already && silent >= a.opts.OrphanAfter {
		a.orphaned = true
	}
	nowOrphan := a.orphaned
	a.mu.Unlock()
	if already || !nowOrphan {
		return
	}
	mOrphaned.Inc()
	if err := a.node.Runtime.SetCap(a.opts.FloorW); err != nil {
		a.opts.Logf("fleet agent %s: orphaned after %v (%v) but floor cap failed: %v",
			a.name, silent.Round(time.Millisecond), cause, err)
		return
	}
	a.opts.Logf("fleet agent %s: orphaned after %v without coordinator contact (%v); dropped to floor %.1f W",
		a.name, silent.Round(time.Millisecond), cause, a.opts.FloorW)
}
