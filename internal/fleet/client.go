package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"time"

	"acsel/internal/fault"
)

// maxBodyBytes bounds any fleet RPC body; reports are a few KB even
// with hundreds of breakpoints, so anything near the limit is garbage.
const maxBodyBytes = 1 << 20

// nominalRTTSeconds is the baseline round trip a NetDelay fault
// multiplies — the delay is booked against the injected-delay
// histogram rather than slept, keeping chaos runs deterministic in
// wall time like the P-state delay accounting.
const nominalRTTSeconds = 1e-3

// Client issues fleet RPCs with a per-attempt timeout, bounded
// retries, and exponential backoff. Every attempt crosses the
// fault.SiteNet seam keyed by the caller's event key and the attempt
// ordinal, so a chaos plan can deterministically drop the first
// attempt of one node's pull and let the retry through. The zero
// Client is usable.
type Client struct {
	// HTTP is the underlying client (http.DefaultClient if nil); the
	// per-attempt Timeout is applied via context regardless.
	HTTP *http.Client
	// Faults injects network faults; nil injects nothing.
	Faults *fault.Injector
	// Retries is how many attempts beyond the first to allow
	// (default 2).
	Retries int
	// Timeout bounds each attempt (default 2s).
	Timeout time.Duration
	// Backoff is the base delay before the first retry, doubling per
	// attempt (default 50ms).
	Backoff time.Duration
}

func (c *Client) retries() int {
	if c == nil || c.Retries < 0 {
		return 0
	}
	if c.Retries == 0 {
		return 2
	}
	return c.Retries
}

func (c *Client) timeout() time.Duration {
	if c == nil || c.Timeout <= 0 {
		return 2 * time.Second
	}
	return c.Timeout
}

func (c *Client) backoff() time.Duration {
	if c == nil || c.Backoff <= 0 {
		return 50 * time.Millisecond
	}
	return c.Backoff
}

// Report pulls an agent's current report.
func (c *Client) Report(ctx context.Context, baseURL, key string) (Report, error) {
	var rep Report
	err := c.call(ctx, http.MethodGet, baseURL+PathReport, nil, &rep, key)
	if err != nil {
		return Report{}, err
	}
	if err := rep.Validate(); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// PushCap asks an agent to apply a cap.
func (c *Client) PushCap(ctx context.Context, baseURL string, req CapRequest, key string) (CapResponse, error) {
	var resp CapResponse
	err := c.call(ctx, http.MethodPost, baseURL+PathCap, req, &resp, key)
	return resp, err
}

// SendHeartbeat joins or renews a membership lease with the coordinator.
func (c *Client) SendHeartbeat(ctx context.Context, coordURL string, hb Heartbeat) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := c.call(ctx, http.MethodPost, coordURL+PathHeartbeat, hb, &resp,
		fault.EventKey("heartbeat/"+hb.Name, 0))
	return resp, err
}

// call runs the retry loop around attempt.
func (c *Client) call(ctx context.Context, method, url string, body, out any, key string) error {
	var err error
	for attempt := 0; attempt <= c.retries(); attempt++ {
		if attempt > 0 {
			mRPCRetries.Inc()
			d := c.backoff() << (attempt - 1)
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return fmt.Errorf("fleet: %s %s: %w (after %v)", method, url, ctx.Err(), err)
			}
		}
		if err = c.attempt(ctx, method, url, body, out, key, attempt); err == nil {
			return nil
		}
		if ctx.Err() != nil {
			break
		}
	}
	return err
}

func (c *Client) attempt(ctx context.Context, method, url string, body, out any, key string, attempt int) error {
	drop, corrupt := false, false
	var corruptMag float64
	for _, f := range c.faults().At(fault.SiteNet, key, attempt) {
		switch f.Kind {
		case fault.NetDrop:
			drop = true
		case fault.NetDelay:
			mInjectedDelaySeconds.Observe(f.Magnitude * nominalRTTSeconds)
		case fault.NetCorrupt:
			corrupt, corruptMag = true, f.Magnitude
		}
	}
	if drop {
		return fmt.Errorf("fleet: %s %s: injected network drop (%s#%d)", method, url, key, attempt)
	}

	actx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("fleet: encode %s %s: %w", method, url, err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(actx, method, url, rd)
	if err != nil {
		return fmt.Errorf("fleet: %s %s: %w", method, url, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: %s %s: %w", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("fleet: %s %s: read body: %w", method, url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: %s %s: %s: %s", method, url, resp.Status, truncate(data, 200))
	}
	if corrupt {
		scramble(data, key, attempt, corruptMag)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("fleet: %s %s: decode response: %w", method, url, err)
		}
	}
	return nil
}

func (c *Client) faults() *fault.Injector {
	if c == nil {
		return nil
	}
	return c.Faults
}

// scramble deterministically flips bytes of an RPC response body — the
// torn read / proxy truncation a NetCorrupt fault models. Positions
// derive from (key, attempt), so a replay corrupts identically. The
// result nearly always fails JSON decoding or report validation, which
// is the point: the caller must treat it as a failed attempt.
func scramble(data []byte, key string, attempt int, magnitude float64) {
	if len(data) == 0 {
		return
	}
	n := int(magnitude)
	if n <= 0 {
		n = 1
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(key)) // hash.Hash.Write never returns an error
	seed := h.Sum64() + uint64(attempt)*0x9e3779b97f4a7c15
	for i := 0; i < n; i++ {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		data[seed%uint64(len(data))] ^= 0xFF
	}
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}
