package fleet

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"acsel/internal/core"
	"acsel/internal/hierarchy"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
	"acsel/internal/rts"
)

var (
	setupOnce sync.Once
	setupErr  error
	gModel    *core.Model
	gApps     [][]kernels.Kernel
)

// sharedModel trains one model (on SMC+LU, like the hierarchy tests)
// and returns application kernel sets to spread across fleet members.
func sharedModel(t *testing.T) (*core.Model, [][]kernels.Kernel) {
	t.Helper()
	setupOnce.Do(func() {
		var training []kernels.Kernel
		var comd, lulesh []kernels.Kernel
		for _, c := range kernels.Combos() {
			switch {
			case c.Benchmark == "CoMD" && c.Input == "Large":
				comd = c.Kernels
			case c.Benchmark == "LULESH" && c.Input == "Small":
				lulesh = c.Kernels
			case c.Benchmark == "SMC" || c.Benchmark == "LU":
				training = append(training, c.Kernels...)
			}
		}
		p := profiler.New()
		opts := core.DefaultTrainOptions()
		opts.Iterations = 1
		opts.K = 4
		profs, err := core.Characterize(p, training, opts)
		if err != nil {
			setupErr = err
			return
		}
		gModel, setupErr = core.Train(p.Space, profs, opts)
		gApps = [][]kernels.Kernel{comd, lulesh}
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return gModel, gApps
}

// fakeClock is the deterministic time seam for lease tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testMember is one live loopback agent: a real runtime behind a real
// HTTP server.
type testMember struct {
	agent *Agent
	rt    *rts.Runtime
	srv   *httptest.Server
}

// startMembers builds n agents with adapted runtimes (every kernel has
// run once, so demand and predicted curves exist) on loopback servers.
func startMembers(t *testing.T, clock *fakeClock, n int, capW float64) []*testMember {
	t.Helper()
	model, apps := sharedModel(t)
	members := make([]*testMember, n)
	for i := range members {
		rt, err := rts.New(model, rts.Options{CapW: capW})
		if err != nil {
			t.Fatal(err)
		}
		app := apps[i%len(apps)]
		for _, k := range app {
			if _, err := rt.RunKernel(k); err != nil {
				t.Fatal(err)
			}
		}
		name := string(rune('a'+i)) + "-node"
		agent, err := NewAgent(name, rt, app, AgentOptions{
			Coordinator: "unused", Logf: t.Logf, Now: clock.Now,
		})
		if err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		agent.Register(mux)
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		members[i] = &testMember{agent: agent, rt: rt, srv: srv}
	}
	return members
}

// join heartbeats each member into the coordinator over HTTP.
func join(t *testing.T, coordURL string, members []*testMember) {
	t.Helper()
	cl := &Client{}
	for _, m := range members {
		hb := Heartbeat{Version: ProtocolVersion, Name: m.agent.Name(), Addr: m.srv.URL}
		if _, err := cl.SendHeartbeat(context.Background(), coordURL, hb); err != nil {
			t.Fatalf("heartbeat %s: %v", m.agent.Name(), err)
		}
	}
}

func startCoordinator(t *testing.T, opts CoordinatorOptions) (*Coordinator, string) {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	mux := http.NewServeMux()
	c.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return c, srv.URL
}

// TestRebalanceConvergesToFullBudget is the loopback integration test:
// three live agents join, one round divides the whole budget, and
// every runtime runs under its pushed cap.
func TestRebalanceConvergesToFullBudget(t *testing.T) {
	clock := newClock()
	members := startMembers(t, clock, 3, 20)
	const budget = 60.0
	for _, policy := range []hierarchy.Policy{hierarchy.Uniform, hierarchy.DemandProportional, hierarchy.WaterFill} {
		coord, url := startCoordinator(t, CoordinatorOptions{
			BudgetW: budget, Policy: policy, LeaseTTL: 3 * time.Second, Now: clock.Now, Logf: t.Logf,
		})
		join(t, url, members)
		res, err := coord.RebalanceOnce(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if res.PullFailures != 0 || res.PushFailures != 0 {
			t.Fatalf("%s: clean loopback round had failures: %+v", policy, res)
		}
		if len(res.Caps) != 3 {
			t.Fatalf("%s: pushed %d caps, want 3", policy, len(res.Caps))
		}
		sum := 0.0
		for name, c := range res.Caps {
			if c < hierarchy.MinNodeCapW-1e-9 {
				t.Fatalf("%s: %s assigned %v below floor", policy, name, c)
			}
			sum += c
		}
		if math.Abs(sum-budget) > 1e-6 {
			t.Fatalf("%s: assignment sums to %v, want full budget %v", policy, sum, budget)
		}
		for _, m := range members {
			want := res.Caps[m.agent.Name()]
			if got := m.rt.Cap(); math.Abs(got-want) > 1e-9 {
				t.Fatalf("%s: %s runtime cap %v, pushed %v", policy, m.agent.Name(), got, want)
			}
		}
		if st := coord.Status(); math.Abs(st.AssignedTotalW-budget) > 1e-6 {
			t.Fatalf("%s: status total %v, want %v", policy, st.AssignedTotalW, budget)
		}
	}
}

// TestEvictionRedistributesWatts kills one member's heartbeats and
// checks the next round evicts it and hands its watts to the
// survivors — the full budget again divides over the remaining nodes.
func TestEvictionRedistributesWatts(t *testing.T) {
	clock := newClock()
	members := startMembers(t, clock, 3, 20)
	const budget = 60.0
	coord, url := startCoordinator(t, CoordinatorOptions{
		BudgetW: budget, Policy: hierarchy.DemandProportional,
		LeaseTTL: 3 * time.Second, Now: clock.Now, Logf: t.Logf,
	})
	join(t, url, members)
	if _, err := coord.RebalanceOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The last member goes silent; the others renew their leases.
	clock.Advance(4 * time.Second)
	join(t, url, members[:2])
	res, err := coord.RebalanceOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	dead := members[2].agent.Name()
	if len(res.Evicted) != 1 || res.Evicted[0] != dead {
		t.Fatalf("evicted %v, want [%s]", res.Evicted, dead)
	}
	if len(res.Caps) != 2 {
		t.Fatalf("pushed %d caps after eviction, want 2", len(res.Caps))
	}
	sum := 0.0
	for _, c := range res.Caps {
		sum += c
	}
	if math.Abs(sum-budget) > 1e-6 {
		t.Fatalf("survivors hold %v W, want the dead node's watts redistributed to the full %v", sum, budget)
	}
	st := coord.Status()
	if len(st.Members) != 2 {
		t.Fatalf("status still lists %d members", len(st.Members))
	}
	if st.Evictions != 1 {
		t.Fatalf("status evictions = %d, want 1", st.Evictions)
	}
}

// TestCheckpointRestore closes a journaling coordinator mid-flight and
// checks its successor resumes the same round counter and assignment,
// grants restored members a lease grace, and keeps rebalancing.
func TestCheckpointRestore(t *testing.T) {
	clock := newClock()
	members := startMembers(t, clock, 2, 20)
	journal := filepath.Join(t.TempDir(), "fleet.acsj")
	const budget = 48.0

	first, url := startCoordinator(t, CoordinatorOptions{
		BudgetW: budget, Policy: hierarchy.WaterFill, Journal: journal,
		LeaseTTL: 3 * time.Second, Now: clock.Now, Logf: t.Logf,
	})
	join(t, url, members)
	if _, err := first.RebalanceOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if first.Recovered() {
		t.Fatal("fresh coordinator claims recovery")
	}
	before := first.Status()
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	second, _ := startCoordinator(t, CoordinatorOptions{
		BudgetW: budget, Policy: hierarchy.WaterFill, Journal: journal,
		LeaseTTL: 3 * time.Second, Now: clock.Now, Logf: t.Logf,
	})
	if !second.Recovered() {
		t.Fatal("restarted coordinator did not recover from the journal")
	}
	after := second.Status()
	if after.Round != before.Round {
		t.Fatalf("round %d after restart, want %d", after.Round, before.Round)
	}
	if len(after.Members) != len(before.Members) {
		t.Fatalf("%d members after restart, want %d", len(after.Members), len(before.Members))
	}
	for i, m := range after.Members {
		w := before.Members[i]
		if m.Name != w.Name || math.Abs(m.AssignedW-w.AssignedW) > 1e-9 {
			t.Fatalf("member %d restored as %+v, want %+v", i, m, w)
		}
		if m.LeaseSeconds <= 0 {
			t.Fatalf("restored member %s has no lease grace", m.Name)
		}
	}

	// Within the grace lease the successor rebalances the same fleet.
	res, err := second.RebalanceOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, c := range res.Caps {
		sum += c
	}
	if len(res.Caps) != 2 || math.Abs(sum-budget) > 1e-6 {
		t.Fatalf("post-restart round pushed %v (sum %v), want both members at full budget %v",
			res.Caps, sum, budget)
	}
}

// TestPushFailureKeepsBudgetInvariant points one member at a dead
// address mid-fleet: its push fails, it keeps its previous cap on the
// books, and the round's total never exceeds the budget.
func TestPushFailureKeepsBudgetInvariant(t *testing.T) {
	clock := newClock()
	members := startMembers(t, clock, 3, 20)
	const budget = 60.0
	coord, url := startCoordinator(t, CoordinatorOptions{
		BudgetW: budget, Policy: hierarchy.Uniform, LeaseTTL: time.Hour,
		Client: &Client{Retries: -1, Timeout: 200 * time.Millisecond, Backoff: time.Millisecond},
		Now:    clock.Now, Logf: t.Logf,
	})
	join(t, url, members)
	if _, err := coord.RebalanceOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	// One member dies without missing its (long) lease: pulls and
	// pushes to it now fail.
	members[1].srv.Close()
	res, err := coord.RebalanceOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.PullFailures == 0 && res.PushFailures == 0 {
		t.Fatal("round against a dead member reported no failures")
	}
	if res.AssignedTotalW > budget+budgetSlack {
		t.Fatalf("assigned total %v exceeds budget %v after partial push", res.AssignedTotalW, budget)
	}
	st := coord.Status()
	if st.AssignedTotalW > budget+budgetSlack {
		t.Fatalf("status total %v exceeds budget %v", st.AssignedTotalW, budget)
	}
}

// TestAgentOrphanFallback cuts an agent off from its coordinator and
// checks it drops itself to the floor cap — the min-power degradation
// ladder's territory — then recovers on renewed contact.
func TestAgentOrphanFallback(t *testing.T) {
	clock := newClock()
	members := startMembers(t, clock, 1, 24)
	m := members[0]
	agent, err := NewAgent("orphan-node", m.rt, m.agent.node.App, AgentOptions{
		Coordinator: "http://127.0.0.1:1", // nothing listens here
		Client:      &Client{Retries: -1, Timeout: 200 * time.Millisecond, Backoff: time.Millisecond},
		OrphanAfter: 2 * time.Second,
		Logf:        t.Logf,
		Now:         clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}

	// First failure inside the window: not yet orphaned.
	agent.heartbeat(context.Background(), "http://self")
	if agent.Orphaned() {
		t.Fatal("orphaned before OrphanAfter elapsed")
	}
	clock.Advance(3 * time.Second)
	agent.heartbeat(context.Background(), "http://self")
	if !agent.Orphaned() {
		t.Fatal("agent not orphaned after OrphanAfter without contact")
	}
	if got := m.rt.Cap(); got != hierarchy.MinNodeCapW { //lint:ignore floatcmp the floor is assigned verbatim, never computed
		t.Fatalf("orphan cap %v, want floor %v", got, hierarchy.MinNodeCapW)
	}

	// A coordinator cap push counts as contact and clears the orphan.
	mux := http.NewServeMux()
	agent.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	cl := &Client{}
	if _, err := cl.PushCap(context.Background(), srv.URL,
		CapRequest{Version: ProtocolVersion, CapW: 20, Round: 9}, "cap/orphan-node|9"); err != nil {
		t.Fatal(err)
	}
	if agent.Orphaned() {
		t.Fatal("agent still orphaned after an accepted cap push")
	}
	if got := m.rt.Cap(); got != 20 { //lint:ignore floatcmp assigned verbatim
		t.Fatalf("cap %v after push, want 20", got)
	}
}
