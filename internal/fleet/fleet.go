// Package fleet lifts the cluster power-budget hierarchy out of a
// single process: the machine-wide division the paper frames in §I
// ("power constraints ... passed down through the machine hierarchy to
// each rack, node, and core") runs here across real node boundaries,
// over HTTP/JSON. Each node runs an Agent (embedded in acsel-serve)
// that exposes its runtime's demand summary and adapted-kernel
// predicted utility curve and accepts cap pushes; a Coordinator
// (cmd/acsel-fleet) maintains lease-based membership from agent
// heartbeats, pulls node reports in parallel with per-node
// timeout/retry/backoff, runs the internal/hierarchy dividers over the
// reported curves, and pushes new caps transactionally — decreases
// before increases, so the summed assignment never exceeds the budget
// even mid-push or mid-failure.
//
// Failure semantics: a node that stops heartbeating misses its lease
// and is evicted at the next round, its watts redistributed across the
// survivors; a node whose report pull fails keeps its last known
// report (or an empty one, which the dividers treat as
// no-information); a node whose cap push fails keeps its previous cap
// on the coordinator's books, and the node itself — if it has lost the
// coordinator entirely — drops to the MinNodeCapW floor, where the
// runtime's min-power degradation ladder guards it. All RPCs cross the
// internal/fault SiteNet seam, so chaos tests can deterministically
// drop, delay, or corrupt any exchange.
package fleet

import (
	"fmt"
	"math"
	"sort"

	"acsel/internal/hierarchy"
)

// ProtocolVersion guards the wire schema; peers reject other versions
// rather than guessing at field meanings.
const ProtocolVersion = 1

// HTTP paths of the fleet protocol. Report and Cap are served by
// agents; Heartbeat and Members by the coordinator.
const (
	// PathReport is GET: the agent's current Report.
	PathReport = "/fleet/report"
	// PathCap is POST CapRequest: apply a new node power cap.
	PathCap = "/fleet/cap"
	// PathHeartbeat is POST Heartbeat: join or renew a membership lease.
	PathHeartbeat = "/fleet/heartbeat"
	// PathMembers is GET: the coordinator's Status document.
	PathMembers = "/fleet/members"
)

// Report is one node's self-description: its measured power demand and
// the predicted utility curve of its adapted kernels, sampled at the
// curve's breakpoints. The curve is a step function that changes value
// only at breakpoints, so the samples reconstruct it exactly — the
// dividers run on a remote Report precisely as they would on the local
// node (see Report.View).
type Report struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	// CapW is the cap the node currently runs under — the
	// coordinator's notion of "current" for a node it has not yet
	// assigned.
	CapW float64 `json:"cap_w"`
	// DemandW is the node's mean measured power over its recent
	// window; DemandOK is false before any history exists.
	DemandW  float64 `json:"demand_w"`
	DemandOK bool    `json:"demand_ok"`
	// Breakpoints are the sorted unique predicted power values at
	// which the utility curve can jump; Utility[i] is the curve's value
	// at Breakpoints[i].
	Breakpoints []float64 `json:"breakpoints,omitempty"`
	Utility     []float64 `json:"utility,omitempty"`
	// AdaptedKernels and Steps are diagnostics (how much the node has
	// learned and run so far).
	AdaptedKernels int `json:"adapted_kernels"`
	Steps          int `json:"steps"`
}

// Validate checks a report's shape — the receiving coordinator's guard
// against corrupt or hostile payloads. Breakpoints must be finite,
// positive, and strictly increasing; utilities finite, non-negative,
// and non-decreasing (a larger cap can only admit more configurations).
func (r Report) Validate() error {
	if r.Version != ProtocolVersion {
		return fmt.Errorf("fleet: report version %d (want %d)", r.Version, ProtocolVersion)
	}
	if r.Name == "" {
		return fmt.Errorf("fleet: report without a node name")
	}
	if math.IsNaN(r.CapW) || math.IsInf(r.CapW, 0) || r.CapW < 0 {
		return fmt.Errorf("fleet: report %s: cap %v is not a non-negative wattage", r.Name, r.CapW)
	}
	if math.IsNaN(r.DemandW) || math.IsInf(r.DemandW, 0) || r.DemandW < 0 {
		return fmt.Errorf("fleet: report %s: demand %v is not a non-negative wattage", r.Name, r.DemandW)
	}
	if len(r.Breakpoints) != len(r.Utility) {
		return fmt.Errorf("fleet: report %s: %d breakpoints but %d utility samples",
			r.Name, len(r.Breakpoints), len(r.Utility))
	}
	for i, bp := range r.Breakpoints {
		if math.IsNaN(bp) || math.IsInf(bp, 0) || bp <= 0 {
			return fmt.Errorf("fleet: report %s: breakpoint %d (%v) is not a positive wattage", r.Name, i, bp)
		}
		if i > 0 && bp <= r.Breakpoints[i-1] {
			return fmt.Errorf("fleet: report %s: breakpoints not strictly increasing at %d", r.Name, i)
		}
		u := r.Utility[i]
		if math.IsNaN(u) || math.IsInf(u, 0) || u < 0 {
			return fmt.Errorf("fleet: report %s: utility %d (%v) is not a non-negative value", r.Name, i, u)
		}
		if i > 0 && u < r.Utility[i-1] {
			return fmt.Errorf("fleet: report %s: utility decreases at breakpoint %d", r.Name, i)
		}
	}
	return nil
}

// ReportOf samples a NodeView into its wire form. The inverse is
// Report.View; dividing over either yields identical caps.
func ReportOf(v hierarchy.NodeView) Report {
	r := Report{Version: ProtocolVersion, Name: v.NodeName()}
	r.DemandW, r.DemandOK = v.DemandW()
	bps := v.Breakpoints()
	if len(bps) > 0 {
		r.Breakpoints = append([]float64(nil), bps...)
		r.Utility = make([]float64, len(bps))
		for i, bp := range bps {
			r.Utility[i] = v.UtilityAt(bp)
		}
	}
	return r
}

// View adapts the report back into the divider's NodeView: the step
// curve is reconstructed by lookup over the sampled breakpoints.
func (r Report) View() hierarchy.NodeView { return reportView{r} }

type reportView struct{ r Report }

func (v reportView) NodeName() string { return v.r.Name }

func (v reportView) DemandW() (float64, bool) { return v.r.DemandW, v.r.DemandOK }

func (v reportView) Breakpoints() []float64 { return v.r.Breakpoints }

// UtilityAt evaluates the sampled step curve: the value of the
// greatest breakpoint not above capW, zero below the first one.
func (v reportView) UtilityAt(capW float64) float64 {
	bps := v.r.Breakpoints
	i := sort.SearchFloat64s(bps, capW)
	if i < len(bps) && bps[i] == capW { //lint:ignore floatcmp the local curve admits configs at exactly the cap (<=), so an exact breakpoint hit takes its own value
		return v.r.Utility[i]
	}
	if i == 0 {
		return 0
	}
	return v.r.Utility[i-1]
}

// CapRequest asks an agent to apply a new node power cap.
type CapRequest struct {
	Version int     `json:"version"`
	CapW    float64 `json:"cap_w"`
	// Round is the coordinator's rebalance round, for log correlation.
	Round int `json:"round"`
}

// CapResponse acknowledges an applied cap.
type CapResponse struct {
	Name string  `json:"name"`
	CapW float64 `json:"cap_w"`
}

// Heartbeat joins the fleet or renews a membership lease.
type Heartbeat struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Addr is the agent's own base URL ("http://host:port") the
	// coordinator calls back for reports and cap pushes.
	Addr string `json:"addr"`
}

// HeartbeatResponse grants a lease.
type HeartbeatResponse struct {
	// LeaseMillis is how long the membership stays valid without
	// another heartbeat.
	LeaseMillis int64 `json:"lease_ms"`
	// AssignedW is the node's current cap on the coordinator's books
	// (0 until the first rebalance reaches it).
	AssignedW float64 `json:"assigned_w"`
}

// MemberStatus is one member's row in the coordinator Status document.
type MemberStatus struct {
	Name      string  `json:"name"`
	Addr      string  `json:"addr"`
	AssignedW float64 `json:"assigned_w"`
	HasReport bool    `json:"has_report"`
	// LeaseSeconds is the remaining lease time; non-positive means the
	// member will be evicted at the next round.
	LeaseSeconds float64 `json:"lease_seconds"`
}

// Status is the coordinator's diagnostic document (GET PathMembers).
type Status struct {
	Version        int            `json:"version"`
	Round          int            `json:"round"`
	BudgetW        float64        `json:"budget_w"`
	Policy         string         `json:"policy"`
	Recovered      bool           `json:"recovered"`
	AssignedTotalW float64        `json:"assigned_total_w"`
	Evictions      int            `json:"evictions"`
	Members        []MemberStatus `json:"members"`
}
