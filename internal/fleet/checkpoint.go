package fleet

import (
	"encoding/json"
	"fmt"
	"sort"

	"acsel/internal/checkpoint"
)

// RecordAssignment is the journal record type for one round's
// assignment checkpoint.
const RecordAssignment byte = 1

// checkpointVersion guards the checkpoint payload schema.
const checkpointVersion = 1

// MemberCheckpoint is one member's persisted state.
type MemberCheckpoint struct {
	Name      string  `json:"name"`
	Addr      string  `json:"addr"`
	AssignedW float64 `json:"assigned_w"`
}

// AssignmentCheckpoint is what a coordinator needs to resume after a
// crash: the round counter and each member's address and last pushed
// cap. Reports are deliberately absent — they are re-pulled on the
// first round after restart, and leases restart fresh (every restored
// member gets one grace TTL to heartbeat again before eviction).
type AssignmentCheckpoint struct {
	Version int                `json:"version"`
	Round   int                `json:"round"`
	BudgetW float64            `json:"budget_w"`
	Policy  string             `json:"policy"`
	Members []MemberCheckpoint `json:"members"`
}

// EncodeAssignment frames a checkpoint as a journal record. Members
// are sorted by name so identical states encode identically.
func EncodeAssignment(cp AssignmentCheckpoint) (checkpoint.Record, error) {
	cp.Version = checkpointVersion
	sort.Slice(cp.Members, func(i, j int) bool { return cp.Members[i].Name < cp.Members[j].Name })
	data, err := json.Marshal(cp)
	if err != nil {
		return checkpoint.Record{}, fmt.Errorf("fleet: encode assignment checkpoint: %w", err)
	}
	return checkpoint.Record{Type: RecordAssignment, Data: data}, nil
}

// DecodeAssignment parses an assignment record.
func DecodeAssignment(rec checkpoint.Record) (AssignmentCheckpoint, error) {
	var cp AssignmentCheckpoint
	if rec.Type != RecordAssignment {
		return cp, fmt.Errorf("fleet: record type %d is not an assignment", rec.Type)
	}
	if err := json.Unmarshal(rec.Data, &cp); err != nil {
		return cp, fmt.Errorf("fleet: decode assignment checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return cp, fmt.Errorf("fleet: assignment checkpoint version %d (want %d)", cp.Version, checkpointVersion)
	}
	for i, m := range cp.Members {
		if m.Name == "" {
			return cp, fmt.Errorf("fleet: assignment checkpoint member %d has no name", i)
		}
	}
	return cp, nil
}

// LastAssignment scans decoded journal records for the newest valid
// assignment (later records win; invalid ones are skipped, matching
// the journal's tolerance of torn tails).
func LastAssignment(recs []checkpoint.Record) (AssignmentCheckpoint, bool) {
	var out AssignmentCheckpoint
	found := false
	for _, rec := range recs {
		if rec.Type != RecordAssignment {
			continue
		}
		if cp, err := DecodeAssignment(rec); err == nil {
			out, found = cp, true
		}
	}
	return out, found
}
