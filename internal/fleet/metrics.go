package fleet

import "acsel/internal/metrics"

// Fleet instrumentation. Coordinator-side families cover the rebalance
// loop end to end (round latency, per-node caps, membership churn, RPC
// health); agent-side families cover what the node experiences (caps
// applied or rejected, lost-coordinator orphaning).
var (
	// Coordinator.
	mRebalanceSeconds = metrics.NewHistogram("acsel_fleet_rebalance_seconds",
		"wall time of one full rebalance round (pulls, divide, pushes)", metrics.TimeBuckets)
	mNodeCapWatts = metrics.NewGaugeVec("acsel_fleet_node_cap_watts",
		"cap currently assigned to each member node", "node")
	mAssignedWatts = metrics.NewGauge("acsel_fleet_assigned_watts",
		"sum of caps currently assigned across the fleet")
	mRounds = metrics.NewCounter("acsel_fleet_rounds_total",
		"rebalance rounds completed")
	mJoins = metrics.NewCounter("acsel_fleet_joins_total",
		"members admitted (first heartbeat or rejoin after eviction)")
	mHeartbeats = metrics.NewCounter("acsel_fleet_heartbeats_total",
		"lease renewals accepted")
	mEvictions = metrics.NewCounter("acsel_fleet_evictions_total",
		"members evicted on lease expiry")
	mPullFailures = metrics.NewCounter("acsel_fleet_pull_failures_total",
		"report pulls that failed after all retries")
	mPushes = metrics.NewCounter("acsel_fleet_cap_pushes_total",
		"cap pushes acknowledged by agents")
	mPushFailures = metrics.NewCounter("acsel_fleet_cap_push_failures_total",
		"cap pushes that failed after all retries (node keeps its previous cap)")
	mCheckpoints = metrics.NewCounter("acsel_fleet_checkpoints_total",
		"assignment checkpoints appended to the journal")
	mRestores = metrics.NewCounter("acsel_fleet_restores_total",
		"coordinator restarts that resumed membership from a journal")

	// RPC client (shared by coordinator pulls/pushes and agent heartbeats).
	mRPCRetries = metrics.NewCounter("acsel_fleet_rpc_retries_total",
		"RPC attempts beyond the first")
	mInjectedDelaySeconds = metrics.NewHistogram("acsel_fleet_injected_delay_seconds",
		"extra round-trip latency booked by injected net-delay faults", metrics.TimeBuckets)

	// Agent.
	mReportsServed = metrics.NewCounter("acsel_fleet_reports_served_total",
		"report requests answered by this agent")
	mCapsApplied = metrics.NewCounter("acsel_fleet_caps_applied_total",
		"coordinator cap pushes this agent applied")
	mCapsRejected = metrics.NewCounter("acsel_fleet_caps_rejected_total",
		"cap pushes rejected (malformed or refused by the runtime)")
	mHeartbeatFailures = metrics.NewCounter("acsel_fleet_heartbeat_failures_total",
		"heartbeats that failed after all retries")
	mOrphaned = metrics.NewCounter("acsel_fleet_orphaned_total",
		"times this agent lost the coordinator and dropped to the floor cap")
)
