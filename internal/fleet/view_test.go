package fleet

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"

	"acsel/internal/hierarchy"
)

// synthView is a synthetic NodeView mirroring the hierarchy package's
// property-test fixture: a hand-built demand figure and step curve.
type synthView struct {
	name     string
	demandW  float64
	demandOK bool
	bps      []float64
	util     []float64
}

func (v synthView) NodeName() string         { return v.name }
func (v synthView) DemandW() (float64, bool) { return v.demandW, v.demandOK }
func (v synthView) Breakpoints() []float64   { return v.bps }
func (v synthView) UtilityAt(c float64) float64 {
	i := sort.SearchFloat64s(v.bps, c)
	if i < len(v.bps) && v.bps[i] == c { //lint:ignore floatcmp step curve includes its breakpoints
		return v.util[i]
	}
	if i == 0 {
		return 0
	}
	return v.util[i-1]
}

func randomViews(rng *rand.Rand, n int) []hierarchy.NodeView {
	views := make([]hierarchy.NodeView, n)
	for i := range views {
		v := synthView{
			name:     string(rune('a'+i)) + "-node",
			demandW:  rng.Float64() * 40,
			demandOK: rng.Intn(4) != 0,
		}
		u := 0.0
		for bp := 5 + rng.Float64()*10; bp < 80 && rng.Intn(8) != 0; bp += 1 + rng.Float64()*12 {
			u += rng.Float64() * 0.3
			v.bps = append(v.bps, bp)
			v.util = append(v.util, u)
		}
		views[i] = v
	}
	return views
}

// roundtrip pushes a view through the full wire path: sample to a
// Report, marshal to JSON, unmarshal, validate, view again.
func roundtrip(t *testing.T, v hierarchy.NodeView) hierarchy.NodeView {
	t.Helper()
	rep := ReportOf(v)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	return back.View()
}

// TestRemoteViewMatchesLocal checks the tentpole's load-bearing claim:
// a report round-tripped over the wire reconstructs the utility curve
// exactly, so the dividers produce bitwise-identical caps from remote
// reports and local views. Float64 values survive JSON unchanged and
// the curve is a step function sampled at every breakpoint, so exact
// equality — not tolerance — is the contract.
func TestRemoteViewMatchesLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		budget := hierarchy.MinNodeCapW*float64(n) + rng.Float64()*100
		local := randomViews(rng, n)
		remote := make([]hierarchy.NodeView, n)
		for i, v := range local {
			remote[i] = roundtrip(t, v)
		}
		// Pointwise curve equality at breakpoints, between them, and at
		// the extremes.
		for i, v := range local {
			for _, bp := range v.Breakpoints() {
				for _, at := range []float64{bp, bp - 0.25, bp + 0.25, 0, 500} {
					if got, want := remote[i].UtilityAt(at), v.UtilityAt(at); got != want { //lint:ignore floatcmp exact reconstruction is the contract
						t.Fatalf("trial %d %s: remote utility(%v) = %v, local %v",
							trial, v.NodeName(), at, got, want)
					}
				}
			}
			gotD, gotOK := remote[i].DemandW()
			wantD, wantOK := v.DemandW()
			if gotD != wantD || gotOK != wantOK { //lint:ignore floatcmp exact reconstruction is the contract
				t.Fatalf("trial %d %s: remote demand (%v,%v), local (%v,%v)",
					trial, v.NodeName(), gotD, gotOK, wantD, wantOK)
			}
		}
		for _, p := range []hierarchy.Policy{hierarchy.Uniform, hierarchy.DemandProportional, hierarchy.WaterFill} {
			lc, err := hierarchy.Divide(p, local, budget)
			if err != nil {
				t.Fatal(err)
			}
			rc, err := hierarchy.Divide(p, remote, budget)
			if err != nil {
				t.Fatal(err)
			}
			for i := range lc {
				if lc[i] != rc[i] { //lint:ignore floatcmp identical curves must divide identically
					t.Fatalf("trial %d %s: node %d remote cap %v, local %v", trial, p, i, rc[i], lc[i])
				}
			}
		}
	}
}

// TestRemoteDivideProperties re-checks the divider invariants through
// the remote-report path: sum equals budget within 1e-9, every cap at
// least the floor.
func TestRemoteDivideProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		budget := hierarchy.MinNodeCapW*float64(n) + rng.Float64()*100
		views := make([]hierarchy.NodeView, n)
		for i, v := range randomViews(rng, n) {
			views[i] = roundtrip(t, v)
		}
		for _, p := range []hierarchy.Policy{hierarchy.Uniform, hierarchy.DemandProportional, hierarchy.WaterFill} {
			caps, err := hierarchy.Divide(p, views, budget)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0.0
			for i, c := range caps {
				if c < hierarchy.MinNodeCapW-1e-9 {
					t.Fatalf("trial %d %s: cap %d = %v below floor", trial, p, i, c)
				}
				sum += c
			}
			if math.Abs(sum-budget) > 1e-9 {
				t.Fatalf("trial %d %s: caps sum to %v, budget %v", trial, p, sum, budget)
			}
		}
	}
}

// TestReportValidateRejectsGarbage feeds Validate the malformed shapes
// a corrupt or hostile peer could send.
func TestReportValidateRejectsGarbage(t *testing.T) {
	good := Report{Version: ProtocolVersion, Name: "n", CapW: 20, DemandW: 15, DemandOK: true,
		Breakpoints: []float64{10, 20}, Utility: []float64{0.4, 0.9}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	bad := []Report{
		{Version: 99, Name: "n"},
		{Version: ProtocolVersion},
		{Version: ProtocolVersion, Name: "n", CapW: math.NaN()},
		{Version: ProtocolVersion, Name: "n", DemandW: math.Inf(1)},
		{Version: ProtocolVersion, Name: "n", Breakpoints: []float64{10}, Utility: nil},
		{Version: ProtocolVersion, Name: "n", Breakpoints: []float64{-1}, Utility: []float64{0}},
		{Version: ProtocolVersion, Name: "n", Breakpoints: []float64{20, 10}, Utility: []float64{0, 1}},
		{Version: ProtocolVersion, Name: "n", Breakpoints: []float64{10, 20}, Utility: []float64{1, 0.5}},
		{Version: ProtocolVersion, Name: "n", Breakpoints: []float64{10}, Utility: []float64{math.NaN()}},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad report %d passed validation: %+v", i, r)
		}
	}
}
