package query

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity LRU of computed Responses keyed by
// (model hash, kernel, quantized cap bits, z bits). Entries are
// content-addressed through the model hash: a hot reload to a model
// with different bytes changes the hash, so stale entries can never be
// returned — purgeExcept merely reclaims their memory eagerly.
type lruCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	hash string // model hash the entry was computed under
	resp Response
}

// newLRUCache returns a cache holding up to max entries; max <= 0
// disables caching (every get misses, every put is dropped).
func newLRUCache(max int) *lruCache {
	return &lruCache{max: max, order: list.New(), items: map[string]*list.Element{}}
}

func (c *lruCache) get(key string) (Response, bool) {
	if c.max <= 0 {
		return Response{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return Response{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

func (c *lruCache) put(key, hash string, resp Response) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, hash: hash, resp: resp})
	for c.order.Len() > c.max {
		back := c.order.Back()
		delete(c.items, back.Value.(*cacheEntry).key)
		c.order.Remove(back)
	}
}

// purgeExcept drops every entry computed under a model hash other than
// keep, returning how many were removed.
func (c *lruCache) purgeExcept(keep string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var purged int
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); e.hash != keep {
			delete(c.items, e.key)
			c.order.Remove(el)
			purged++
		}
		el = next
	}
	return purged
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
