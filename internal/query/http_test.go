package query_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"acsel/internal/query"
)

func newTestServer(t *testing.T, s *query.Service) (*httptest.Server, *query.Client) {
	t.Helper()
	srv := httptest.NewServer(query.NewHandler(s))
	t.Cleanup(srv.Close)
	return srv, &query.Client{BaseURL: srv.URL}
}

func TestHTTPSelectRoundTrip(t *testing.T) {
	mA, _ := testModels(t)
	s := newTestService(t, mA, query.Options{})
	_, c := newTestServer(t, s)
	ctx := context.Background()

	for _, kernel := range s.Kernels()[:3] {
		for _, z := range []float64{0, 1.5} {
			req := query.Request{Kernel: kernel, CapW: 21.5, Z: z}
			remote, err := c.Select(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			local, err := s.Select(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			// The remote call computed first, so the local one is served
			// from cache; the selection payload must be identical.
			if remote.Selection != local.Selection {
				t.Fatalf("%s z=%v: remote %+v != local %+v", kernel, z, remote.Selection, local.Selection)
			}
			if remote.ModelHash != local.ModelHash || remote.EffectiveCapW != local.EffectiveCapW {
				t.Fatalf("%s z=%v: envelope mismatch: %+v vs %+v", kernel, z, remote, local)
			}
			if remote.Selection != oracle(t, s, mA, kernel, remote.EffectiveCapW, z) {
				t.Fatal("remote selection does not match direct oracle")
			}
		}
	}
}

func TestHTTPTypedErrors(t *testing.T) {
	mA, _ := testModels(t)
	s := newTestService(t, mA, query.Options{})
	srv, c := newTestServer(t, s)
	ctx := context.Background()

	if _, err := c.Select(ctx, query.Request{Kernel: "No/Such/Kernel", CapW: 20}); !errors.Is(err, query.ErrUnknownKernel) {
		t.Fatalf("unknown kernel over HTTP: %v", err)
	}
	if _, err := c.Select(ctx, query.Request{CapW: 20}); !errors.Is(err, query.ErrBadRequest) {
		t.Fatalf("empty kernel over HTTP: %v", err)
	}

	// Raw wire-level rejects: bad JSON, unknown fields, trailing data,
	// wrong method. All must answer a JSON error envelope, never a panic.
	for _, body := range []string{
		"{not json",
		`{"kernel":"a","cap_w":10,"bogus":1}`,
		`{"kernel":"a","cap_w":10}{"again":true}`,
		`{"kernel":"a","cap_w":"many"}`,
	} {
		resp, err := http.Post(srv.URL+query.PathSelect, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + query.PathSelect)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET select: status %d, want 405", resp.StatusCode)
	}
}

// TestHTTPOverloadIs429: with the single worker held and the queue
// full, a remote select sheds with HTTP 429, which the client maps back
// to ErrOverloaded.
func TestHTTPOverloadIs429(t *testing.T) {
	mA, _ := testModels(t)
	started := make(chan struct{})
	release := make(chan struct{})
	opts := query.Options{Workers: 1, QueueDepth: 1, CacheSize: -1}
	opts.SetComputeGate(func() {
		started <- struct{}{}
		<-release
	})
	s := newTestService(t, mA, opts)
	_, c := newTestServer(t, s)
	ks := s.Kernels()
	ctx := context.Background()

	p1, err := s.Submit(query.Request{Kernel: ks[0], CapW: 10})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	p2, err := s.Submit(query.Request{Kernel: ks[1], CapW: 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Select(ctx, query.Request{Kernel: ks[2], CapW: 14}); !errors.Is(err, query.ErrOverloaded) {
		t.Fatalf("remote select on full queue: %v, want ErrOverloaded", err)
	}

	close(release)
	go func() {
		for range started {
		}
	}()
	for _, p := range []*query.Pending{p1, p2} {
		if _, err := s.Wait(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	close(started)
}

func TestHTTPBatch(t *testing.T) {
	mA, _ := testModels(t)
	s := newTestService(t, mA, query.Options{})
	_, c := newTestServer(t, s)
	ctx := context.Background()
	k := s.Kernels()[0]

	reqs := []query.Request{
		{Kernel: k, CapW: 15},
		{Kernel: k, CapW: 15}, // duplicate: coalesces or hits cache
		{Kernel: "No/Such/Kernel", CapW: 15},
		{Kernel: k, CapW: 30, Z: 1.5},
	}
	resps, errs, err := c.SelectBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != len(reqs) || len(errs) != len(reqs) {
		t.Fatalf("batch shape: %d resps, %d errs", len(resps), len(errs))
	}
	if errs[0] != nil || errs[1] != nil || errs[3] != nil {
		t.Fatalf("valid items errored: %v", errs)
	}
	if !errors.Is(errs[2], query.ErrUnknownKernel) {
		t.Fatalf("invalid item: %v, want ErrUnknownKernel", errs[2])
	}
	if resps[0].Selection != resps[1].Selection {
		t.Fatal("duplicate batch items disagree")
	}
	if resps[0].Selection != oracle(t, s, mA, k, resps[0].EffectiveCapW, 0) {
		t.Fatal("batch selection does not match oracle")
	}
	// A batch beyond the server's limit is rejected as a whole.
	if _, _, err := c.SelectBatch(ctx, make([]query.Request, 2048)); !errors.Is(err, query.ErrBatchTooLarge) {
		t.Fatalf("oversized batch: %v", err)
	}
}

func TestHTTPModelsInfoAndReload(t *testing.T) {
	mA, mB := testModels(t)
	s := newTestService(t, mA, query.Options{})
	_, c := newTestServer(t, s)
	ctx := context.Background()

	info, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	hash, seq := s.Generation()
	if info.ModelHash != hash || info.ModelSeq != seq {
		t.Fatalf("models info %+v, want hash %s seq %d", info, hash, seq)
	}
	if len(info.Kernels) != len(s.Kernels()) {
		t.Fatalf("info lists %d kernels, want %d", len(info.Kernels), len(s.Kernels()))
	}
	if info.CapQuantumW != s.CapQuantumW() {
		t.Fatalf("info quantum %v, want %v", info.CapQuantumW, s.CapQuantumW())
	}

	// Hot reload via the API: write model B, point the server at it.
	path := filepath.Join(t.TempDir(), "model-b.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mB.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := c.Reload(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	wantHash, err := mB.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if after.ModelHash != wantHash || after.ModelSeq != seq+1 {
		t.Fatalf("post-reload info %+v, want hash %s seq %d", after, wantHash, seq+1)
	}
	// Selections now come from model B.
	k := s.Kernels()[0]
	resp, err := c.Select(ctx, query.Request{Kernel: k, CapW: 20})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ModelHash != wantHash {
		t.Fatalf("post-reload selection from %s, want %s", resp.ModelHash, wantHash)
	}
	if resp.Selection != oracle(t, s, mB, k, resp.EffectiveCapW, 0) {
		t.Fatal("post-reload selection does not match model B oracle")
	}

	// Reload failure paths: missing path, nonexistent file.
	if _, err := c.Reload(ctx, ""); !errors.Is(err, query.ErrBadRequest) {
		t.Fatalf("empty reload path: %v", err)
	}
	if _, err := c.Reload(ctx, filepath.Join(t.TempDir(), "missing.json")); !errors.Is(err, query.ErrBadRequest) {
		t.Fatalf("missing reload file: %v", err)
	}
}
