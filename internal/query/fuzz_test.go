package query_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"acsel/internal/query"
)

// fuzzSvc is a small shared service the fuzz target drives decoded
// requests through; built once, on the first input that needs it.
var (
	fuzzOnce sync.Once
	fuzzSvc  *query.Service
	fuzzErr  error
)

func fuzzService(t *testing.T) *query.Service {
	t.Helper()
	fuzzOnce.Do(func() {
		mA, _ := testModels(t)
		fuzzSvc, fuzzErr = query.NewService(mA, query.Options{
			Kernels: testUniverse(t)[:2],
		})
	})
	if fuzzErr != nil {
		t.Fatal(fuzzErr)
	}
	return fuzzSvc
}

// FuzzSelectRequestDecode pins the decoder's total contract: any byte
// string either decodes into a Request that validates cleanly, or fails
// with an ErrBadRequest-typed error — never a panic. Inputs that decode
// are then driven through a live service, whose answer must likewise be
// either a response or a typed error (unknown kernels included). Wired
// into make fuzz-smoke.
func FuzzSelectRequestDecode(f *testing.F) {
	seeds := []string{
		`{"kernel":"LULESH/Small/CalcQForElems","cap_w":22}`,
		`{"kernel":"LULESH/Small/CalcQForElems","cap_w":22,"z":1.5}`,
		`{"kernel":"No/Such/Kernel","cap_w":10}`,
		`{"kernel":"","cap_w":10}`,
		`{"kernel":"a","cap_w":1e999}`,         // +Inf overflows float64 decoding
		`{"kernel":"a","cap_w":-1e999}`,        // -Inf
		`{"kernel":"a","cap_w":NaN}`,           // NaN is not JSON
		`{"kernel":"a","cap_w":10,"z":-3}`,     // negative margin
		`{"kernel":"a","cap_w":10,"bogus":{}}`, // unknown field
		`{"kernel":"a","cap_w":10}{"k":1}`,     // trailing data
		`[{"kernel":"a","cap_w":10}]`,          // wrong shape (a batch, not a request)
		`{"requests":[` + strings.Repeat(`{"kernel":"a","cap_w":1},`, 64) + `]}`,
		`{"kernel":"` + strings.Repeat("k", 4096) + `","cap_w":5}`,
		"",
		"null",
		"{}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := query.DecodeSelectRequest(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, query.ErrBadRequest) {
				t.Fatalf("decode error is not typed: %v", err)
			}
			return
		}
		if verr := req.Validate(); verr != nil {
			t.Fatalf("decoder accepted a request its own Validate rejects: %+v: %v", req, verr)
		}
		s := fuzzService(t)
		resp, serr := s.Select(context.Background(), req)
		if serr != nil {
			for _, typed := range []error{
				query.ErrBadRequest, query.ErrUnknownKernel,
				query.ErrOverloaded, query.ErrClosed,
			} {
				if errors.Is(serr, typed) {
					return
				}
			}
			t.Fatalf("service error is not typed: %v (req %+v)", serr, req)
		}
		if resp.Kernel != req.Kernel {
			t.Fatalf("response names %q for request %q", resp.Kernel, req.Kernel)
		}
	})
}
