package query_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"acsel/internal/core"
	"acsel/internal/fault"
	"acsel/internal/query"
	"acsel/internal/query/loadgen"
)

// oracleEntry is one (model, kernel) prediction vector, precomputed so
// the verifier seat stays cheap enough to run inline with the load.
type oracleEntry struct {
	preds     []core.Prediction
	cluster   int
	minPowerW float64
}

// soakOracle is the single-threaded reference for every generation a
// soak run can be served by.
type soakOracle struct {
	quantum float64
	// preds[modelHash][kernel]
	preds map[string]map[string]oracleEntry
}

func newSoakOracle(t *testing.T, s *query.Service, models ...*core.Model) *soakOracle {
	t.Helper()
	o := &soakOracle{quantum: s.CapQuantumW(), preds: map[string]map[string]oracleEntry{}}
	for _, m := range models {
		hash, err := m.Hash()
		if err != nil {
			t.Fatal(err)
		}
		byKernel := map[string]oracleEntry{}
		for _, kernel := range s.Kernels() {
			sr, ok := s.SampleRuns(kernel)
			if !ok {
				t.Fatalf("no shard for %s", kernel)
			}
			preds, cluster, err := m.PredictAll(sr)
			if err != nil {
				t.Fatal(err)
			}
			byKernel[kernel] = oracleEntry{
				preds: preds, cluster: cluster,
				minPowerW: core.MinPredictedPowerW(preds),
			}
		}
		o.preds[hash] = byKernel
	}
	return o
}

// verify checks one response against the single-threaded reference for
// the model generation the response claims to be from.
func (o *soakOracle) verify(req query.Request, resp query.Response) error {
	byKernel, ok := o.preds[resp.ModelHash]
	if !ok {
		return fmt.Errorf("response from unknown model generation %q", resp.ModelHash)
	}
	e, ok := byKernel[req.Kernel]
	if !ok {
		return fmt.Errorf("response for unknown kernel %q", req.Kernel)
	}
	eff := query.QuantizeCapW(req.CapW, o.quantum)
	if resp.EffectiveCapW != eff {
		return fmt.Errorf("effective cap %v, oracle %v", resp.EffectiveCapW, eff)
	}
	want, err := core.SelectAmong(e.preds, e.cluster, eff, req.Z)
	if err != nil {
		return err
	}
	if resp.Selection != want {
		return fmt.Errorf("selection %+v, oracle %+v (cap %v z %v)", resp.Selection, want, eff, req.Z)
	}
	if resp.MinPowerW != e.minPowerW {
		return fmt.Errorf("min power %v, oracle %v", resp.MinPowerW, e.minPowerW)
	}
	return nil
}

// TestSoakSelectionService is the acceptance soak: a seeded closed-loop
// load (8 workers, >=10k queries) against a deliberately small service
// (2 workers, queue depth 2, half the shards slowed by an injected
// fault) with two hot reloads mid-run. Every successful response must
// match the single-threaded oracle bitwise for the generation it names;
// admission control must shed (shed counter > 0) and no request may
// outlive its deadline. Run under -race via make test-query.
func TestSoakSelectionService(t *testing.T) {
	mA, mB := testModels(t)
	requests := 30_000
	if testing.Short() {
		requests = 10_000
	}

	inj := fault.NewInjector(fault.Scenario{
		Name:        "query-slow-shard",
		Description: "half the kernels answer slowly",
		Rules: []fault.Rule{
			{Site: fault.SiteNet, Kind: fault.NetDelay, Prob: 0.5, Magnitude: 4},
		},
	}, 7)
	s := newTestService(t, mA, query.Options{
		Workers:    2,
		QueueDepth: 4,   // 8 closed-loop clients can queue up to 6: overload is reachable, not constant
		CacheSize:  256, // smaller than the key space, so misses persist
		Faults:     inj,
	})
	o := newSoakOracle(t, s, mA, mB)
	hashA, _ := s.Generation()

	// Hot reloads at one third and two thirds of the run, triggered by
	// completion count — no wall-clock pacing.
	var flip1, flip2 atomic.Bool
	onResult := func(done int) {
		if done >= requests/3 && flip1.CompareAndSwap(false, true) {
			if _, _, err := s.Reload(mB); err != nil {
				t.Error(err)
			}
		}
		if done >= 2*requests/3 && flip2.CompareAndSwap(false, true) {
			if _, _, err := s.Reload(mA); err != nil {
				t.Error(err)
			}
		}
	}

	var mu sync.Mutex
	var mismatches []string
	verify := func(req query.Request, resp query.Response) error {
		if err := o.verify(req, resp); err != nil {
			mu.Lock()
			if len(mismatches) < 5 {
				mismatches = append(mismatches, err.Error())
			}
			mu.Unlock()
			return err
		}
		return nil
	}

	const timeout = 2 * time.Second
	sum, err := loadgen.Run(context.Background(), s, loadgen.Config{
		Workers:  8,
		Requests: requests,
		Seed:     42,
		Kernels:  s.Kernels(),
		CapsW:    []float64{4, 7, 10, 13, 16, 19, 22, 25, 28, 31, 34, 37, 40},
		Zs:       []float64{0, 1.5},
		Timeout:  timeout,
		Verify:   verify,
		OnResult: onResult,
	})
	if err != nil {
		t.Fatal(err)
	}

	writeSoakArtifact(t, sum)
	t.Logf("soak: %d requests, %d ok (%d cached, %d coalesced), %d shed, %d deadline, %d errors, p50 %.2gs p99 %.2gs max %.2gs, generations %d",
		sum.Requests, sum.OK, sum.Cached, sum.Coalesced, sum.Shed, sum.Deadline, sum.Errors,
		sum.P50Seconds, sum.P99Seconds, sum.MaxSeconds, len(sum.ByGeneration))

	if sum.Requests != requests {
		t.Fatalf("ran %d requests, want %d", sum.Requests, requests)
	}
	if sum.Mismatches != 0 {
		t.Fatalf("%d selection mismatches vs the single-threaded oracle; first: %v",
			sum.Mismatches, mismatches)
	}
	if sum.Errors != 0 {
		t.Fatalf("%d unexpected errors: %v", sum.Errors, sum.MismatchSamples)
	}
	if sum.Deadline != 0 {
		t.Fatalf("%d requests hit their %v deadline — something hung", sum.Deadline, timeout)
	}
	if sum.Shed == 0 {
		t.Fatal("admission control never shed: the soak did not exercise overload")
	}
	if sum.OK+sum.Shed != requests {
		t.Fatalf("accounting: ok %d + shed %d != %d", sum.OK, sum.Shed, requests)
	}
	if got := int(s.Stats().Shed); got != sum.Shed {
		t.Fatalf("service shed counter %d != loadgen shed %d", got, sum.Shed)
	}
	if len(sum.ByGeneration) < 2 {
		t.Fatalf("traffic served by %d generations, want >= 2 (hot reload never took)", len(sum.ByGeneration))
	}
	if !flip1.Load() || !flip2.Load() {
		t.Fatal("hot reloads did not both fire")
	}
	if hash, _ := s.Generation(); hash != hashA {
		t.Fatalf("final generation %s, want model A's %s", hash, hashA)
	}
	// "No request hangs past its deadline": the deadline count is zero
	// (above) and the slowest observed request stays within the deadline
	// plus generous scheduler slack.
	if sum.MaxSeconds > (timeout + 5*time.Second).Seconds() {
		t.Fatalf("slowest request took %.3fs, far past its %v deadline", sum.MaxSeconds, timeout)
	}
}

// writeSoakArtifact publishes the run summary as a JSON artifact when
// ACSEL_QUERY_SUMMARY names a path (make test-query sets it; CI uploads
// the file).
func writeSoakArtifact(t *testing.T, sum loadgen.Summary) {
	t.Helper()
	path := os.Getenv("ACSEL_QUERY_SUMMARY")
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("soak summary written to %s", path)
}

// TestStressHotReloadRace hammers a small service from many goroutines
// while a reloader flips the model between two generations as fast as
// it can. Every response must name one of the two known generations and
// match that generation's oracle exactly — a torn read (a selection
// from one model stamped with the other's hash) fails here, and -race
// watches the pointer swap itself.
func TestStressHotReloadRace(t *testing.T) {
	mA, mB := testModels(t)
	s := newTestService(t, mA, query.Options{
		Workers:    4,
		QueueDepth: 64,
		CacheSize:  128,
	})
	o := newSoakOracle(t, s, mA, mB)

	queries := 400
	goroutines := 8
	if testing.Short() {
		queries = 150
	}

	stop := make(chan struct{})
	var reloaderDone sync.WaitGroup
	reloaderDone.Add(1)
	go func() {
		defer reloaderDone.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m := mA
			if i%2 == 1 {
				m = mB
			}
			if _, _, err := s.Reload(m); err != nil {
				t.Error(err)
				return
			}
			runtime.Gosched()
		}
	}()

	ctx := context.Background()
	universe := s.Kernels()
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < queries; i++ {
				req := query.Request{
					Kernel: universe[(g+i)%len(universe)],
					CapW:   4 + float64((g*queries+i)%37),
					Z:      float64(i%2) * 1.5,
				}
				resp, err := s.Select(ctx, req)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					failures.Add(1)
					return
				}
				if verr := o.verify(req, resp); verr != nil {
					t.Errorf("goroutine %d: %v", g, verr)
					if failures.Add(1) > 3 {
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	reloaderDone.Wait()
	if s.Stats().Reloads == 0 {
		t.Fatal("reloader never ran")
	}
}
