// Package query is the high-throughput selection service: it answers
// SelectUnderCap-style queries — (kernel, cap watts, z) → predicted-best
// configuration — from one or more trained core.Models at production
// call rates. The paper's runtime makes this decision once per kernel
// invocation on one node; here the same decision is served concurrently
// to many callers, which changes the engineering problem from "walk the
// frontier" to "never walk it twice for the same question":
//
//   - Per-kernel shards precompute the online stage's sample runs once
//     and cache the model's full prediction vector per model
//     generation, so a query is a cap sweep over cached predictions —
//     core.SelectAmong, the exact loop behind core.SelectUnderCap, so
//     every path is bitwise-identical to the single-threaded call.
//   - A bounded worker pool with a depth-limited queue provides
//     admission control: a full queue sheds the request with a typed
//     ErrOverloaded (the HTTP layer's 429) instead of queueing without
//     bound, and queue-wait/shed are first-class metrics.
//   - Identical in-flight questions coalesce: requests for the same
//     (generation, kernel, quantized cap, z) key attach to the leader's
//     computation and all receive its result.
//   - Completed selections land in an LRU keyed by the model's SHA-256
//     content hash (the same content-addressing scheme as
//     core.TrainCached), so a hot model reload — an atomic generation
//     pointer swap — implicitly invalidates every stale entry; the
//     purge merely reclaims memory early.
//
// Deliberate consequence of the design: a response is computed entirely
// against the generation captured at admission, and carries that
// generation's hash, so concurrent hot reloads can never produce a torn
// read — the soak and stress tests assert every response equals the
// single-threaded oracle for the model its hash names.
package query

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"acsel/internal/apu"
	"acsel/internal/core"
	"acsel/internal/fault"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
)

// Typed error taxonomy. The HTTP layer maps these to status codes and
// back, so errors.Is works identically in-process and across -remote.
var (
	// ErrBadRequest marks a malformed query: empty kernel, non-finite
	// cap, negative or non-finite z, or an undecodable body.
	ErrBadRequest = errors.New("query: bad request")
	// ErrUnknownKernel marks a kernel ID outside the service universe.
	ErrUnknownKernel = errors.New("query: unknown kernel")
	// ErrOverloaded is the admission-control shed: the worker queue was
	// full. Clients should back off and retry (HTTP 429).
	ErrOverloaded = errors.New("query: overloaded, request shed")
	// ErrClosed is returned once the service has shut down.
	ErrClosed = errors.New("query: service closed")
	// ErrBatchTooLarge marks a batch beyond Options.MaxBatch.
	ErrBatchTooLarge = errors.New("query: batch too large")
)

// DefaultCapQuantumW is the cap quantization step: incoming caps are
// floored to a multiple of it at admission, so requests within one
// quantum share cache entries and coalesce. 1/32 W is far below any
// power-measurement resolution in the paper's testbed, and the
// response's EffectiveCapW always reports the cap actually used.
const DefaultCapQuantumW = 1.0 / 32

// Slow-shard fault pacing: a fault.NetDelay resolved at the SiteNet
// seam stretches one shard's computation by Magnitude × slowShardUnit,
// bounded by maxSlowShardDelay so chaos plans cannot stall a worker
// indefinitely.
const (
	slowShardUnit     = 100 * time.Microsecond
	maxSlowShardDelay = 5 * time.Millisecond
)

// Options configures a Service. The zero value selects sane defaults.
type Options struct {
	// Workers is the worker-pool size (default: 4).
	Workers int
	// QueueDepth bounds the pending-task queue; a full queue sheds new
	// requests with ErrOverloaded (default: 256).
	QueueDepth int
	// CacheSize is the LRU capacity in selections (default: 4096;
	// negative disables caching).
	CacheSize int
	// CapQuantumW is the cap quantization step in watts (default:
	// DefaultCapQuantumW; negative disables quantization).
	CapQuantumW float64
	// MaxBatch bounds SelectBatch and the /v1/select/batch body
	// (default: 256).
	MaxBatch int
	// Kernels is the service universe (default: every kernel of
	// kernels.Combos()). Sample runs are precomputed per kernel at
	// construction, so a narrow universe starts faster.
	Kernels []kernels.Kernel
	// Faults, when non-nil, is consulted at the fault.SiteNet seam once
	// per computed selection (key "query/<kernelID>"): a NetDelay rule
	// makes the kernel's shard deterministically slow, which is how the
	// stress tests widen race windows and force admission control on.
	Faults *fault.Injector
	// Now is the clock (time.Now if nil); tests pin it.
	Now func() time.Time

	// computeGate, when non-nil, is called by workers before each
	// computation. Tests use it to hold workers mid-task and fill the
	// queue deterministically.
	computeGate func()
}

// Request is one selection query.
type Request struct {
	Kernel string  `json:"kernel"`
	CapW   float64 `json:"cap_w"`
	Z      float64 `json:"z,omitempty"`
}

// Validate applies the request invariants shared by every entry path.
func (r Request) Validate() error {
	if r.Kernel == "" {
		return fmt.Errorf("%w: missing kernel", ErrBadRequest)
	}
	if math.IsNaN(r.CapW) || math.IsInf(r.CapW, 0) {
		return fmt.Errorf("%w: cap_w must be finite, got %v", ErrBadRequest, r.CapW)
	}
	if math.IsNaN(r.Z) || math.IsInf(r.Z, 0) || r.Z < 0 {
		return fmt.Errorf("%w: z must be finite and non-negative, got %v", ErrBadRequest, r.Z)
	}
	return nil
}

// Response is one answered query. Selection is bitwise-identical to
// core.SelectUnderCap(sr, EffectiveCapW) (variance-aware for Z > 0) on
// the model generation named by ModelHash.
type Response struct {
	Kernel        string         `json:"kernel"`
	CapW          float64        `json:"cap_w"`
	EffectiveCapW float64        `json:"effective_cap_w"`
	Z             float64        `json:"z,omitempty"`
	Selection     core.Selection `json:"selection"`
	// MinPowerW is the generation's minimum feasible predicted power
	// for this kernel — the floor ErrCapInfeasible is measured against.
	MinPowerW float64 `json:"min_power_w"`
	ModelHash string  `json:"model_hash"`
	ModelSeq  uint64  `json:"model_seq"`
	Cached    bool    `json:"cached,omitempty"`
	Coalesced bool    `json:"coalesced,omitempty"`
}

// Stats is a point-in-time snapshot of the service's own counters
// (mirrors of the metric families, readable without registry scraping).
type Stats struct {
	Served    uint64 `json:"served"`
	Cached    uint64 `json:"cached"`
	Coalesced uint64 `json:"coalesced"`
	Shed      uint64 `json:"shed"`
	Reloads   uint64 `json:"reloads"`
}

// generation is one immutable loaded model: swap-in is an atomic
// pointer store, and every task pins the generation it was admitted
// under for its whole life.
type generation struct {
	model *core.Model
	hash  string
	seq   uint64
}

// shardPreds is one shard's prediction state for one generation.
type shardPreds struct {
	genHash   string
	cluster   int
	preds     []core.Prediction
	minPowerW float64
}

// shard is one kernel's slot: its precomputed sample runs plus the
// latest generation's prediction vector.
type shard struct {
	kernel string
	sr     core.SampleRuns

	mu    sync.Mutex // serializes recomputation, not reads
	preds atomic.Pointer[shardPreds]
}

// predictions returns the shard's prediction state for generation g,
// computing and caching it on first use. Concurrent callers for the
// same generation compute once; callers pinned to different
// generations each get a vector consistent with their own generation.
// This is the production half of the test oracle: the soak tests
// assert every served Response equals core.SelectAmong over exactly
// this vector, which is only sound if the whole compute path is
// deterministic — hence the directive.
//
//lint:deterministic
func (sh *shard) predictions(g *generation) (*shardPreds, error) {
	if p := sh.preds.Load(); p != nil && p.genHash == g.hash {
		return p, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if p := sh.preds.Load(); p != nil && p.genHash == g.hash {
		return p, nil
	}
	preds, cluster, err := g.model.PredictAll(sh.sr)
	if err != nil {
		return nil, err
	}
	p := &shardPreds{
		genHash:   g.hash,
		cluster:   cluster,
		preds:     preds,
		minPowerW: core.MinPredictedPowerW(preds),
	}
	sh.preds.Store(p)
	return p, nil
}

// result is what a worker delivers to every waiter of one computation.
type result struct {
	resp Response
	err  error
}

// task is one enqueued computation; all coalesced requests for its key
// are waiters on it.
type task struct {
	key        string
	gen        *generation
	shard      *shard
	capW, z    float64
	enqueuedAt time.Time
	// waiters is guarded by Service.inflightMu.
	waiters []chan result
}

// pending is one admitted request waiting for its answer.
type pending struct {
	reqCapW   float64
	cached    bool
	resp      Response // valid when cached
	coalesced bool
	ch        chan result
}

// Service answers selection queries. Construct with NewService; all
// methods are safe for concurrent use.
type Service struct {
	opts   Options
	now    func() time.Time
	shards map[string]*shard
	cache  *lruCache
	queue  chan *task
	stop   chan struct{}
	wg     sync.WaitGroup

	gen      atomic.Pointer[generation]
	reloadMu sync.Mutex

	// mu guards closed against racing submits (a submit holds the read
	// side across its enqueue so Close cannot strand a waiter).
	mu     sync.RWMutex
	closed bool

	inflightMu sync.Mutex
	inflight   map[string]*task

	served    atomic.Uint64
	cachedN   atomic.Uint64
	coalesced atomic.Uint64
	shed      atomic.Uint64
	reloads   atomic.Uint64
}

// NewService builds the service around an initial model: it precomputes
// every universe kernel's sample runs (the online stage's two
// iterations, deterministic per kernel identity) and starts the worker
// pool.
func NewService(m *core.Model, opts Options) (*Service, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil model", core.ErrNoModel)
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = 4096
	}
	if opts.CapQuantumW <= 0 {
		opts.CapQuantumW = DefaultCapQuantumW
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 256
	}
	universe := opts.Kernels
	if len(universe) == 0 {
		for _, c := range kernels.Combos() {
			universe = append(universe, c.Kernels...)
		}
	}
	hash, err := m.Hash()
	if err != nil {
		return nil, err
	}
	s := &Service{
		opts:     opts,
		now:      opts.Now,
		shards:   make(map[string]*shard, len(universe)),
		cache:    newLRUCache(opts.CacheSize),
		queue:    make(chan *task, opts.QueueDepth),
		stop:     make(chan struct{}),
		inflight: map[string]*task{},
	}
	if s.now == nil {
		s.now = time.Now
	}
	p := profiler.New()
	for _, k := range universe {
		cpu, err := p.RunConfig(k, apu.SampleConfigCPU(), 0)
		if err != nil {
			return nil, fmt.Errorf("query: sampling %s on CPU: %w", k.ID(), err)
		}
		gpu, err := p.RunConfig(k, apu.SampleConfigGPU(), 1)
		if err != nil {
			return nil, fmt.Errorf("query: sampling %s on GPU: %w", k.ID(), err)
		}
		s.shards[k.ID()] = &shard{kernel: k.ID(), sr: core.SampleRuns{CPU: cpu, GPU: gpu}}
	}
	s.gen.Store(&generation{model: m, hash: hash, seq: 1})
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// QuantizeCapW floors capW to a multiple of quantum (no-op for
// quantum <= 0). The service's selection semantics are defined over the
// quantized cap; responses echo it as EffectiveCapW.
func QuantizeCapW(capW, quantum float64) float64 {
	if quantum <= 0 {
		return capW
	}
	return math.Floor(capW/quantum) * quantum
}

// CapQuantumW reports the service's configured quantization step.
func (s *Service) CapQuantumW() float64 { return s.opts.CapQuantumW }

// Generation reports the live model's content hash and swap sequence.
func (s *Service) Generation() (hash string, seq uint64) {
	g := s.gen.Load()
	return g.hash, g.seq
}

// Kernels lists the service universe in sorted order.
func (s *Service) Kernels() []string {
	out := make([]string, 0, len(s.shards))
	for id := range s.shards {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SampleRuns exposes one kernel's precomputed sample runs, so callers
// (oracles, tests) can reproduce the service's selections through
// core.Model directly.
func (s *Service) SampleRuns(kernel string) (core.SampleRuns, bool) {
	sh, ok := s.shards[kernel]
	if !ok {
		return core.SampleRuns{}, false
	}
	return sh.sr, true
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	return Stats{
		Served:    s.served.Load(),
		Cached:    s.cachedN.Load(),
		Coalesced: s.coalesced.Load(),
		Shed:      s.shed.Load(),
		Reloads:   s.reloads.Load(),
	}
}

// Reload swaps in a new model generation atomically and purges cached
// selections whose content hash no longer matches. In-flight requests
// admitted under the previous generation complete against it and report
// its hash; requests admitted after the swap see the new generation.
// Reloading byte-identical model bytes advances the sequence but keeps
// the hash, so the cache stays warm — content addressing, not
// generation counting, decides validity.
func (s *Service) Reload(m *core.Model) (hash string, seq uint64, err error) {
	if m == nil {
		return "", 0, fmt.Errorf("%w: nil model", core.ErrNoModel)
	}
	hash, err = m.Hash()
	if err != nil {
		return "", 0, err
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	old := s.gen.Load()
	g := &generation{model: m, hash: hash, seq: old.seq + 1}
	s.gen.Store(g)
	purged := s.cache.purgeExcept(hash)
	mCachePurged.Add(float64(purged))
	mReloads.Inc()
	s.reloads.Add(1)
	return g.hash, g.seq, nil
}

// Close stops accepting requests, drains the queue, and waits for the
// workers. Idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
}

// Select answers one query. It returns ErrOverloaded immediately when
// admission control sheds the request, and ctx's error if the deadline
// expires first — a waiter never outlives its deadline, even though the
// underlying computation completes for any coalesced survivors.
func (s *Service) Select(ctx context.Context, req Request) (Response, error) {
	p, err := s.submit(req)
	if err != nil {
		return Response{}, err
	}
	return s.wait(ctx, p)
}

// SelectBatch answers a batch, amortizing admission and coalescing:
// every request is submitted before any is waited on, so identical
// items in one batch share a single computation. Results and errors are
// parallel to reqs; the overall error is non-nil only when the batch
// itself is rejected (too large).
func (s *Service) SelectBatch(ctx context.Context, reqs []Request) ([]Response, []error, error) {
	if len(reqs) > s.opts.MaxBatch {
		return nil, nil, fmt.Errorf("%w: %d requests (max %d)", ErrBatchTooLarge, len(reqs), s.opts.MaxBatch)
	}
	resps := make([]Response, len(reqs))
	errs := make([]error, len(reqs))
	pendings := make([]*pending, len(reqs))
	for i, req := range reqs {
		pendings[i], errs[i] = s.submit(req)
	}
	for i, p := range pendings {
		if p == nil {
			continue
		}
		resps[i], errs[i] = s.wait(ctx, p)
	}
	return resps, errs, nil
}

// submit validates, resolves the cache, and either coalesces onto an
// identical in-flight computation or enqueues a new task.
func (s *Service) submit(req Request) (*pending, error) {
	if err := req.Validate(); err != nil {
		mRequests.With("error").Inc()
		return nil, err
	}
	sh, ok := s.shards[req.Kernel]
	if !ok {
		mRequests.With("error").Inc()
		return nil, fmt.Errorf("%w: %q", ErrUnknownKernel, req.Kernel)
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}

	gen := s.gen.Load()
	eff := QuantizeCapW(req.CapW, s.opts.CapQuantumW)
	key := cacheKey(gen.hash, req.Kernel, eff, req.Z)
	if resp, ok := s.cache.get(key); ok {
		mCacheHits.Inc()
		resp.CapW = req.CapW
		resp.Cached = true
		return &pending{reqCapW: req.CapW, cached: true, resp: resp}, nil
	}
	mCacheMisses.Inc()

	ch := make(chan result, 1)
	s.inflightMu.Lock()
	if t, ok := s.inflight[key]; ok {
		t.waiters = append(t.waiters, ch)
		s.inflightMu.Unlock()
		mCoalesced.Inc()
		s.coalesced.Add(1)
		return &pending{reqCapW: req.CapW, coalesced: true, ch: ch}, nil
	}
	t := &task{
		key:        key,
		gen:        gen,
		shard:      sh,
		capW:       eff,
		z:          req.Z,
		enqueuedAt: s.now(),
		waiters:    []chan result{ch},
	}
	s.inflight[key] = t
	select {
	case s.queue <- t:
		s.inflightMu.Unlock()
		return &pending{reqCapW: req.CapW, ch: ch}, nil
	default:
		delete(s.inflight, key)
		s.inflightMu.Unlock()
		mShed.Inc()
		s.shed.Add(1)
		mRequests.With("shed").Inc()
		return nil, fmt.Errorf("%w: queue depth %d exhausted", ErrOverloaded, s.opts.QueueDepth)
	}
}

// wait blocks for the pending answer or the caller's deadline.
func (s *Service) wait(ctx context.Context, p *pending) (Response, error) {
	if p.cached {
		mRequests.With("cached").Inc()
		s.cachedN.Add(1)
		return p.resp, nil
	}
	select {
	case r := <-p.ch:
		if r.err != nil {
			mRequests.With("error").Inc()
			return Response{}, r.err
		}
		resp := r.resp
		resp.CapW = p.reqCapW
		resp.Coalesced = p.coalesced
		mRequests.With("served").Inc()
		s.served.Add(1)
		return resp, nil
	case <-ctx.Done():
		mRequests.With("deadline").Inc()
		return Response{}, ctx.Err()
	}
}

// worker drains the task queue until Close, then finishes whatever is
// still queued so no admitted waiter is stranded.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case t := <-s.queue:
			s.handle(t)
		case <-s.stop:
			for {
				select {
				case t := <-s.queue:
					s.handle(t)
				default:
					return
				}
			}
		}
	}
}

// handle computes one task and fans the result out to every waiter.
func (s *Service) handle(t *task) {
	mQueueWait.Observe(s.now().Sub(t.enqueuedAt).Seconds())
	mQueueFill.Set(float64(len(s.queue)) / float64(s.opts.QueueDepth))
	if s.opts.computeGate != nil {
		s.opts.computeGate()
	}
	stop := mSelectSeconds.Time()
	var r result
	sp, err := t.shard.predictions(t.gen)
	if err != nil {
		r.err = err
	} else {
		s.slowShard(t.shard.kernel)
		sel, err := core.SelectAmong(sp.preds, sp.cluster, t.capW, t.z)
		if err != nil {
			r.err = err
		} else {
			r.resp = Response{
				Kernel:        t.shard.kernel,
				CapW:          t.capW,
				EffectiveCapW: t.capW,
				Z:             t.z,
				Selection:     sel,
				MinPowerW:     sp.minPowerW,
				ModelHash:     t.gen.hash,
				ModelSeq:      t.gen.seq,
			}
			s.cache.put(t.key, t.gen.hash, r.resp)
		}
	}
	stop()

	s.inflightMu.Lock()
	if cur, ok := s.inflight[t.key]; ok && cur == t {
		delete(s.inflight, t.key)
	}
	waiters := t.waiters
	s.inflightMu.Unlock()
	for _, ch := range waiters {
		ch <- r // each waiter channel is buffered and receives exactly once
	}
}

// slowShard applies the deterministic slow-shard fault: a NetDelay rule
// at the SiteNet seam, keyed only by the kernel, makes that kernel's
// computations uniformly slow for the life of the plan.
func (s *Service) slowShard(kernel string) {
	if !s.opts.Faults.Active(fault.SiteNet) {
		return
	}
	for _, f := range s.opts.Faults.At(fault.SiteNet, "query/"+kernel, 0) {
		if f.Kind == fault.NetDelay && f.Magnitude > 0 {
			d := time.Duration(f.Magnitude * float64(slowShardUnit))
			if d > maxSlowShardDelay {
				d = maxSlowShardDelay
			}
			time.Sleep(d)
		}
	}
}

// cacheKey builds the content-addressed cache/coalescing key. Float
// parameters enter as exact bit patterns: two caps quantize to the same
// key only when their effective caps are bitwise equal.
func cacheKey(genHash, kernel string, effCapW, z float64) string {
	return genHash + "|" + kernel + "|" +
		strconv.FormatUint(math.Float64bits(effCapW), 16) + "|" +
		strconv.FormatUint(math.Float64bits(z), 16)
}
