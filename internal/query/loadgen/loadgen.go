// Package loadgen is a deterministic closed-loop load generator for the
// selection query service. A run is fully specified by its Config —
// seeded per-worker RNG streams pick (kernel, cap, z) tuples, workers
// issue requests back-to-back with a per-request deadline — so two runs
// of the same config issue the identical request multiset regardless of
// scheduling. The soak tests drive it against both the in-process
// Service and the HTTP Client (the Driver interface covers both) and
// verify every response against a single-threaded oracle.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"acsel/internal/metrics"
	"acsel/internal/query"
)

// Driver answers selection queries; *query.Service and *query.Client
// both satisfy it, so the same workload runs in-process and over HTTP.
type Driver interface {
	Select(ctx context.Context, req query.Request) (query.Response, error)
}

// Config specifies one reproducible run.
type Config struct {
	// Workers is the closed-loop worker count (default 4).
	Workers int
	// Requests is the total request budget across workers (default 1000).
	Requests int
	// Seed keys every worker's RNG stream; same seed, same workload.
	Seed int64
	// Kernels, CapsW, Zs are the request dimensions each worker samples
	// uniformly. Kernels and CapsW are required; Zs defaults to {0}.
	Kernels []string
	CapsW   []float64
	Zs      []float64
	// Timeout is the per-request deadline (default 2s). A request never
	// outlives it: the driver's Select returns on context expiry even
	// while the underlying computation proceeds.
	Timeout time.Duration
	// Verify, when set, checks each successful response (the soak
	// test's oracle seat). A non-nil return counts as a mismatch.
	Verify func(req query.Request, resp query.Response) error
	// OnResult, when set, observes the global completion count after
	// each request finishes (success or failure). Called concurrently
	// from every worker; the soak test uses it to trigger hot reloads
	// at fixed points in the run without sleeping.
	OnResult func(done int)
	// Now is the latency clock (time.Now if nil); injected so summaries
	// stay derivable in replay harnesses.
	Now func() time.Time
}

// Summary aggregates one run. Latency quantiles are estimated from a
// private fixed-bucket histogram (metrics.Histogram.Quantile), so the
// artifact is stable in layout and cheap to merge.
type Summary struct {
	Requests   int `json:"requests"`
	OK         int `json:"ok"`
	Cached     int `json:"cached"`
	Coalesced  int `json:"coalesced"`
	Shed       int `json:"shed"`
	Deadline   int `json:"deadline"`
	Errors     int `json:"errors"`
	Mismatches int `json:"mismatches"`
	// MismatchSamples holds up to maxSamples rendered mismatches /
	// unexpected errors for diagnosis.
	MismatchSamples []string `json:"mismatch_samples,omitempty"`
	// ByGeneration counts successful responses per model hash — the
	// hot-reload tests assert every generation that should have served
	// traffic did.
	ByGeneration map[string]int `json:"by_generation"`

	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
}

// maxSamples bounds the rendered diagnostics kept per run.
const maxSamples = 5

// workerSeedStride separates per-worker RNG streams; any large odd
// constant works, it only has to be fixed.
const workerSeedStride = 1_000_003

// Run drives d with the configured workload and returns the aggregate.
// The error reports config problems only; request-level failures are
// counted in the Summary.
func Run(ctx context.Context, d Driver, cfg Config) (Summary, error) {
	if d == nil {
		return Summary{}, errors.New("loadgen: nil driver")
	}
	if len(cfg.Kernels) == 0 || len(cfg.CapsW) == 0 {
		return Summary{}, errors.New("loadgen: Kernels and CapsW are required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 1000
	}
	if len(cfg.Zs) == 0 {
		cfg.Zs = []float64{0}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}

	// A private registry keeps run-local latency data out of the
	// process-wide exposition.
	hist := metrics.NewRegistry().NewHistogram("acsel_loadgen_latency_seconds",
		"Per-request latency of one load-generator run.",
		metrics.ExponentialBuckets(1e-5, 1.9, 24))

	var done atomic.Int64
	parts := make([]Summary, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		n := cfg.Requests / cfg.Workers
		if w < cfg.Requests%cfg.Workers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*workerSeedStride))
			parts[w] = runWorker(ctx, d, cfg, rng, n, now, hist, &done)
		}(w, n)
	}
	wg.Wait()

	var sum Summary
	sum.ByGeneration = map[string]int{}
	for _, p := range parts {
		sum.Requests += p.Requests
		sum.OK += p.OK
		sum.Cached += p.Cached
		sum.Coalesced += p.Coalesced
		sum.Shed += p.Shed
		sum.Deadline += p.Deadline
		sum.Errors += p.Errors
		sum.Mismatches += p.Mismatches
		for _, s := range p.MismatchSamples {
			if len(sum.MismatchSamples) < maxSamples {
				sum.MismatchSamples = append(sum.MismatchSamples, s)
			}
		}
		for g, c := range p.ByGeneration {
			sum.ByGeneration[g] += c
		}
		if p.MaxSeconds > sum.MaxSeconds {
			sum.MaxSeconds = p.MaxSeconds
		}
	}
	sum.P50Seconds = hist.Quantile(0.50)
	sum.P95Seconds = hist.Quantile(0.95)
	sum.P99Seconds = hist.Quantile(0.99)
	return sum, nil
}

// runWorker is one closed-loop worker: n requests back-to-back, each
// drawn from the worker's own deterministic stream.
func runWorker(ctx context.Context, d Driver, cfg Config, rng *rand.Rand, n int,
	now func() time.Time, hist *metrics.Histogram, done *atomic.Int64) Summary {
	part := Summary{ByGeneration: map[string]int{}}
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return part
		}
		req := query.Request{
			Kernel: cfg.Kernels[rng.Intn(len(cfg.Kernels))],
			CapW:   cfg.CapsW[rng.Intn(len(cfg.CapsW))],
			Z:      cfg.Zs[rng.Intn(len(cfg.Zs))],
		}
		start := now()
		rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
		resp, err := d.Select(rctx, req)
		cancel()
		lat := now().Sub(start).Seconds()
		hist.Observe(lat)
		if lat > part.MaxSeconds {
			part.MaxSeconds = lat
		}
		part.Requests++
		switch {
		case err == nil:
			part.OK++
			if resp.Cached {
				part.Cached++
			}
			if resp.Coalesced {
				part.Coalesced++
			}
			part.ByGeneration[resp.ModelHash]++
			if cfg.Verify != nil {
				if verr := cfg.Verify(req, resp); verr != nil {
					part.Mismatches++
					if len(part.MismatchSamples) < maxSamples {
						part.MismatchSamples = append(part.MismatchSamples,
							fmt.Sprintf("req %+v: %v", req, verr))
					}
				}
			}
		case errors.Is(err, query.ErrOverloaded):
			part.Shed++
		case errors.Is(err, context.DeadlineExceeded):
			part.Deadline++
		default:
			part.Errors++
			if len(part.MismatchSamples) < maxSamples {
				part.MismatchSamples = append(part.MismatchSamples,
					fmt.Sprintf("req %+v: unexpected error: %v", req, err))
			}
		}
		if cfg.OnResult != nil {
			cfg.OnResult(int(done.Add(1)))
		} else {
			done.Add(1)
		}
	}
	return part
}

// Generations lists the model hashes a run was served by, sorted, so
// callers render deterministic artifacts.
func (s Summary) Generations() []string {
	out := make([]string, 0, len(s.ByGeneration))
	for g := range s.ByGeneration {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}
