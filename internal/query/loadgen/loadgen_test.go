package loadgen_test

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"acsel/internal/query"
	"acsel/internal/query/loadgen"
)

// fakeDriver answers deterministically from the request itself and can
// inject typed failures per kernel.
type fakeDriver struct {
	mu   sync.Mutex
	seen []query.Request
	// shedEvery sheds every Nth request (0 disables).
	shedEvery int
	calls     int
}

func (d *fakeDriver) Select(_ context.Context, req query.Request) (query.Response, error) {
	d.mu.Lock()
	d.seen = append(d.seen, req)
	d.calls++
	n := d.calls
	d.mu.Unlock()
	if d.shedEvery > 0 && n%d.shedEvery == 0 {
		return query.Response{}, query.ErrOverloaded
	}
	return query.Response{
		Kernel:        req.Kernel,
		CapW:          req.CapW,
		EffectiveCapW: req.CapW,
		Z:             req.Z,
		ModelHash:     "gen-" + req.Kernel,
		Cached:        req.Z > 0,
	}, nil
}

func (d *fakeDriver) requests() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.seen))
	for i, r := range d.seen {
		out[i] = fmt.Sprintf("%s|%v|%v", r.Kernel, r.CapW, r.Z)
	}
	sort.Strings(out)
	return out
}

func baseConfig() loadgen.Config {
	return loadgen.Config{
		Workers:  4,
		Requests: 500,
		Seed:     7,
		Kernels:  []string{"k1", "k2", "k3"},
		CapsW:    []float64{10, 20, 30},
		Zs:       []float64{0, 1.5},
	}
}

// TestRunDeterministicWorkload: two runs with the same seed issue the
// identical request multiset, regardless of goroutine interleaving.
func TestRunDeterministicWorkload(t *testing.T) {
	d1, d2 := &fakeDriver{}, &fakeDriver{}
	ctx := context.Background()
	s1, err := loadgen.Run(ctx, d1, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := loadgen.Run(ctx, d2, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := d1.requests(), d2.requests()
	if len(r1) != 500 || len(r2) != 500 {
		t.Fatalf("request counts: %d, %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("request multiset diverges at %d: %q vs %q", i, r1[i], r2[i])
		}
	}
	if s1.OK != s2.OK || s1.Requests != s2.Requests {
		t.Fatalf("summaries diverge: %+v vs %+v", s1, s2)
	}
	// A different seed produces a different workload.
	d3 := &fakeDriver{}
	cfg := baseConfig()
	cfg.Seed = 8
	if _, err := loadgen.Run(ctx, d3, cfg); err != nil {
		t.Fatal(err)
	}
	r3 := d3.requests()
	same := true
	for i := range r1 {
		if r1[i] != r3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical workloads")
	}
}

func TestRunCountsOutcomes(t *testing.T) {
	d := &fakeDriver{shedEvery: 5}
	cfg := baseConfig()
	var mu sync.Mutex
	verified := 0
	last := 0
	cfg.Verify = func(req query.Request, resp query.Response) error {
		mu.Lock()
		verified++
		mu.Unlock()
		if resp.Kernel != req.Kernel {
			return fmt.Errorf("wrong kernel")
		}
		return nil
	}
	cfg.OnResult = func(done int) {
		mu.Lock()
		if done > last {
			last = done
		}
		mu.Unlock()
	}
	sum, err := loadgen.Run(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requests != 500 {
		t.Fatalf("requests %d", sum.Requests)
	}
	if sum.Shed != 100 {
		t.Fatalf("shed %d, want 100 (every 5th)", sum.Shed)
	}
	if sum.OK != 400 || sum.OK+sum.Shed != sum.Requests {
		t.Fatalf("accounting: %+v", sum)
	}
	if sum.Mismatches != 0 || sum.Errors != 0 || sum.Deadline != 0 {
		t.Fatalf("unexpected failures: %+v", sum)
	}
	if verified != sum.OK {
		t.Fatalf("verify saw %d responses, want %d", verified, sum.OK)
	}
	if last != 500 {
		t.Fatalf("OnResult high-water %d, want 500", last)
	}
	if sum.Cached == 0 {
		t.Fatal("cached responses not counted")
	}
	// ByGeneration covers all three fake generations, sorted accessor.
	gens := sum.Generations()
	want := []string{"gen-k1", "gen-k2", "gen-k3"}
	if len(gens) != len(want) {
		t.Fatalf("generations %v", gens)
	}
	for i := range want {
		if gens[i] != want[i] {
			t.Fatalf("generations %v, want %v", gens, want)
		}
	}
	total := 0
	for _, c := range sum.ByGeneration {
		total += c
	}
	if total != sum.OK {
		t.Fatalf("ByGeneration totals %d, want %d", total, sum.OK)
	}
	if !(sum.P50Seconds <= sum.P95Seconds && sum.P95Seconds <= sum.P99Seconds) {
		t.Fatalf("quantiles not monotone: %+v", sum)
	}
	if sum.MaxSeconds <= 0 {
		t.Fatalf("max latency %v", sum.MaxSeconds)
	}
}

func TestRunVerifyMismatch(t *testing.T) {
	d := &fakeDriver{}
	cfg := baseConfig()
	cfg.Requests = 50
	cfg.Verify = func(query.Request, query.Response) error {
		return fmt.Errorf("always wrong")
	}
	sum, err := loadgen.Run(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Mismatches != 50 {
		t.Fatalf("mismatches %d, want 50", sum.Mismatches)
	}
	if len(sum.MismatchSamples) == 0 || len(sum.MismatchSamples) > 5 {
		t.Fatalf("samples %v", sum.MismatchSamples)
	}
}

func TestRunConfigErrors(t *testing.T) {
	if _, err := loadgen.Run(context.Background(), nil, baseConfig()); err == nil {
		t.Fatal("nil driver accepted")
	}
	cfg := baseConfig()
	cfg.Kernels = nil
	if _, err := loadgen.Run(context.Background(), &fakeDriver{}, cfg); err == nil {
		t.Fatal("empty kernel set accepted")
	}
}
