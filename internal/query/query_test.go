package query_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"acsel/internal/core"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
	"acsel/internal/query"
)

// Shared fixtures: two trained models with different content hashes
// (seed-perturbed retrain) and a held-out universe the service answers
// for. Training runs once per test binary.
var (
	fixOnce sync.Once
	fixA    *core.Model
	fixB    *core.Model
	fixErr  error
)

// testUniverse is the serving universe: the LULESH/Small kernels, held
// out of training exactly like the paper's leave-benchmark-out split.
func testUniverse(t *testing.T) []kernels.Kernel {
	t.Helper()
	for _, c := range kernels.Combos() {
		if c.Benchmark == "LULESH" && c.Input == "Small" {
			return c.Kernels
		}
	}
	t.Fatal("no LULESH/Small combo")
	return nil
}

// testModels trains (once) and returns two models whose hashes differ.
func testModels(t *testing.T) (*core.Model, *core.Model) {
	t.Helper()
	fixOnce.Do(func() {
		var ks []kernels.Kernel
		for _, c := range kernels.Combos() {
			if c.Benchmark == "LULESH" {
				continue
			}
			ks = append(ks, c.Kernels...)
		}
		p := profiler.New()
		opts := core.DefaultTrainOptions()
		opts.Iterations = 1
		profs, err := core.Characterize(p, ks, opts)
		if err != nil {
			fixErr = err
			return
		}
		if fixA, fixErr = core.Train(p.Space, profs, opts); fixErr != nil {
			return
		}
		opts.Seed++
		fixB, fixErr = core.Train(p.Space, profs, opts)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixA, fixB
}

func newTestService(t *testing.T, m *core.Model, opts query.Options) *query.Service {
	t.Helper()
	if len(opts.Kernels) == 0 {
		opts.Kernels = testUniverse(t)
	}
	s, err := query.NewService(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// oracle computes the single-threaded reference selection for one
// model at the effective cap, through the very same SampleRuns the
// service precomputed.
func oracle(t *testing.T, s *query.Service, m *core.Model, kernel string, effCapW, z float64) core.Selection {
	t.Helper()
	sr, ok := s.SampleRuns(kernel)
	if !ok {
		t.Fatalf("no shard for %s", kernel)
	}
	var sel core.Selection
	var err error
	if z > 0 {
		sel, err = m.SelectUnderCapVarAware(sr, effCapW, z)
	} else {
		sel, err = m.SelectUnderCap(sr, effCapW)
	}
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

func TestSelectMatchesOracle(t *testing.T) {
	mA, _ := testModels(t)
	s := newTestService(t, mA, query.Options{})
	ctx := context.Background()
	for _, kernel := range s.Kernels() {
		for _, capW := range []float64{6, 14.3, 25, 38} {
			resp, err := s.Select(ctx, query.Request{Kernel: kernel, CapW: capW})
			if err != nil {
				t.Fatalf("%s cap=%v: %v", kernel, capW, err)
			}
			want := oracle(t, s, mA, kernel, resp.EffectiveCapW, 0)
			if resp.Selection != want {
				t.Fatalf("%s cap=%v: service %+v != oracle %+v", kernel, capW, resp.Selection, want)
			}
			if resp.CapW != capW {
				t.Fatalf("response echoes cap %v, want %v", resp.CapW, capW)
			}
			if q := query.QuantizeCapW(capW, s.CapQuantumW()); resp.EffectiveCapW != q {
				t.Fatalf("effective cap %v, want %v", resp.EffectiveCapW, q)
			}
		}
	}
}

// TestSelectPathsBitwiseIdentical is the regression test for the
// refactor: direct core.SelectUnderCap, the service's compute path, the
// cache path, and the batch path must agree bitwise — with caps chosen
// to straddle every predicted-frontier breakpoint of every universe
// kernel, where any epsilon drift between paths would flip the winner.
func TestSelectPathsBitwiseIdentical(t *testing.T) {
	mA, _ := testModels(t)
	s := newTestService(t, mA, query.Options{MaxBatch: 1024})
	ctx := context.Background()
	// Straddle offset: larger than the cap quantum, so cap-epsilon and
	// cap+epsilon stay distinct after quantization.
	eps := 4 * s.CapQuantumW()
	for _, kernel := range s.Kernels() {
		sr, ok := s.SampleRuns(kernel)
		if !ok {
			t.Fatal("missing shard")
		}
		frontier, _, err := mA.PredictedFrontier(sr)
		if err != nil {
			t.Fatal(err)
		}
		var caps []float64
		for _, pt := range frontier.Points() {
			caps = append(caps, pt.Power-eps, pt.Power+eps)
		}
		for _, z := range []float64{0, 1.5} {
			var reqs []query.Request
			for _, capW := range caps {
				reqs = append(reqs, query.Request{Kernel: kernel, CapW: capW, Z: z})
			}
			// Path 1: compute (cold). Path 2: cache (immediately after).
			for _, req := range reqs {
				cold, err := s.Select(ctx, req)
				if err != nil {
					t.Fatal(err)
				}
				warm, err := s.Select(ctx, req)
				if err != nil {
					t.Fatal(err)
				}
				direct := oracle(t, s, mA, kernel, cold.EffectiveCapW, z)
				if cold.Selection != direct {
					t.Fatalf("%s cap=%v z=%v: compute path %+v != direct %+v",
						kernel, req.CapW, z, cold.Selection, direct)
				}
				if warm.Selection != direct {
					t.Fatalf("%s cap=%v z=%v: cache path %+v != direct %+v",
						kernel, req.CapW, z, warm.Selection, direct)
				}
				if !warm.Cached {
					t.Fatalf("%s cap=%v z=%v: second select not cached", kernel, req.CapW, z)
				}
			}
			// Path 3: batch.
			resps, errs, err := s.SelectBatch(ctx, reqs)
			if err != nil {
				t.Fatal(err)
			}
			for i, resp := range resps {
				if errs[i] != nil {
					t.Fatal(errs[i])
				}
				direct := oracle(t, s, mA, kernel, resp.EffectiveCapW, z)
				if resp.Selection != direct {
					t.Fatalf("%s cap=%v z=%v: batch path %+v != direct %+v",
						kernel, reqs[i].CapW, z, resp.Selection, direct)
				}
			}
		}
	}
}

func TestSelectTypedErrors(t *testing.T) {
	mA, _ := testModels(t)
	s := newTestService(t, mA, query.Options{MaxBatch: 3})
	ctx := context.Background()
	if _, err := s.Select(ctx, query.Request{Kernel: "", CapW: 20}); !errors.Is(err, query.ErrBadRequest) {
		t.Fatalf("empty kernel: %v", err)
	}
	if _, err := s.Select(ctx, query.Request{Kernel: "No/Such/Kernel", CapW: 20}); !errors.Is(err, query.ErrUnknownKernel) {
		t.Fatalf("unknown kernel: %v", err)
	}
	if _, err := s.Select(ctx, query.Request{Kernel: s.Kernels()[0], CapW: 20, Z: -1}); !errors.Is(err, query.ErrBadRequest) {
		t.Fatalf("negative z: %v", err)
	}
	if _, _, err := s.SelectBatch(ctx, make([]query.Request, 4)); !errors.Is(err, query.ErrBatchTooLarge) {
		t.Fatalf("oversized batch: %v", err)
	}
	s.Close()
	if _, err := s.Select(ctx, query.Request{Kernel: s.Kernels()[0], CapW: 20}); !errors.Is(err, query.ErrClosed) {
		t.Fatalf("closed service: %v", err)
	}
}

// TestAdmissionControlSheds pins the 429 path deterministically: one
// worker held mid-task, a queue of depth one filled, and the next
// submission must shed with ErrOverloaded.
func TestAdmissionControlSheds(t *testing.T) {
	mA, _ := testModels(t)
	started := make(chan struct{})
	release := make(chan struct{})
	opts := query.Options{
		Workers:    1,
		QueueDepth: 1,
		CacheSize:  -1, // no cache: every request must take the queue
	}
	opts.SetComputeGate(func() {
		started <- struct{}{}
		<-release
	})
	s := newTestService(t, mA, opts)
	ks := s.Kernels()
	ctx := context.Background()

	// Occupy the single worker.
	p1, err := s.Submit(query.Request{Kernel: ks[0], CapW: 10})
	if err != nil {
		t.Fatal(err)
	}
	<-started // worker holds p1's task
	// Fill the queue.
	p2, err := s.Submit(query.Request{Kernel: ks[1], CapW: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Next distinct key must shed.
	if _, err := s.Submit(query.Request{Kernel: ks[2], CapW: 14}); !errors.Is(err, query.ErrOverloaded) {
		t.Fatalf("full queue accepted: %v", err)
	}
	if got := s.Stats().Shed; got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	// An identical in-flight key still coalesces instead of shedding.
	p1b, err := s.Submit(query.Request{Kernel: ks[0], CapW: 10})
	if err != nil {
		t.Fatalf("coalescing submit shed: %v", err)
	}
	if !p1b.IsCoalesced() {
		t.Fatal("identical in-flight key did not coalesce")
	}

	close(release)
	go func() {
		for range started { // let the worker pass the gate for queued tasks
		}
	}()
	for _, p := range []*query.Pending{p1, p1b, p2} {
		if _, err := s.Wait(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Coalesced; got != 1 {
		t.Fatalf("coalesced counter = %d, want 1", got)
	}
	close(started)
}

// TestReloadInvalidatesByContent: a reload to different bytes swaps the
// hash and drops cached selections; a reload to identical bytes keeps
// the cache warm (content addressing, not generation counting).
func TestReloadInvalidatesByContent(t *testing.T) {
	mA, mB := testModels(t)
	s := newTestService(t, mA, query.Options{})
	ctx := context.Background()
	req := query.Request{Kernel: s.Kernels()[0], CapW: 18}

	first, err := s.Select(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first select claims cached")
	}
	if s.CacheLen() != 1 {
		t.Fatalf("cache holds %d entries, want 1", s.CacheLen())
	}

	hashB, seq, err := s.Reload(mB)
	if err != nil {
		t.Fatal(err)
	}
	if hashB == first.ModelHash || seq != 2 {
		t.Fatalf("reload hash %s seq %d", hashB, seq)
	}
	if s.CacheLen() != 0 {
		t.Fatalf("cache holds %d entries after content change, want 0", s.CacheLen())
	}
	second, err := s.Select(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Fatal("cache survived a content change")
	}
	if second.ModelHash != hashB {
		t.Fatalf("response hash %s, want %s", second.ModelHash, hashB)
	}
	if second.Selection != oracle(t, s, mB, req.Kernel, second.EffectiveCapW, 0) {
		t.Fatal("post-reload selection does not match model B oracle")
	}

	// Same bytes again: new sequence, same hash, warm cache.
	hashB2, seq2, err := s.Reload(mB)
	if err != nil {
		t.Fatal(err)
	}
	if hashB2 != hashB || seq2 != 3 {
		t.Fatalf("idempotent reload: hash %s seq %d", hashB2, seq2)
	}
	third, err := s.Select(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached {
		t.Fatal("byte-identical reload dropped the cache")
	}
	if third.Selection != second.Selection {
		t.Fatal("cached selection differs from computed one")
	}
}

func TestQuantizeCapW(t *testing.T) {
	cases := []struct{ capW, quantum, want float64 }{
		{20, 0.03125, 20},
		{20.01, 0.03125, 20},
		{20.04, 0.03125, 20.03125},
		{-3.1, 0.03125, -3.125},
		{7.7, 0, 7.7},
		{7.7, -1, 7.7},
	}
	for _, c := range cases {
		if got := query.QuantizeCapW(c.capW, c.quantum); got != c.want {
			t.Errorf("QuantizeCapW(%v, %v) = %v, want %v", c.capW, c.quantum, got, c.want)
		}
	}
}

func TestUnknownKernelHasNoShard(t *testing.T) {
	mA, _ := testModels(t)
	s := newTestService(t, mA, query.Options{})
	if _, ok := s.SampleRuns("No/Such/Kernel"); ok {
		t.Fatal("sample runs for unknown kernel")
	}
}
