package query

import "context"

// Test-only bridges: the admission-control test lives in the external
// query_test package (it shares fixtures with the soak tests, which
// import query/loadgen and would cycle in-package) but needs to drive
// submit/wait separately to fill the queue deterministically.

// Pending is the external-test name for a submitted-but-unwaited query.
type Pending = pending

// SetComputeGate installs the worker gate used to hold computations
// mid-task.
func (o *Options) SetComputeGate(fn func()) { o.computeGate = fn }

// Submit exposes the admission half of Select.
func (s *Service) Submit(req Request) (*Pending, error) { return s.submit(req) }

// Wait exposes the completion half of Select.
func (s *Service) Wait(ctx context.Context, p *Pending) (Response, error) { return s.wait(ctx, p) }

// IsCoalesced reports whether the pending request piggybacked on an
// in-flight computation.
func (p *Pending) IsCoalesced() bool { return p.coalesced }

// CacheLen reports the live entry count of the selection cache.
func (s *Service) CacheLen() int { return s.cache.len() }
