package query

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client speaks the selection API over HTTP/JSON. Remote errors carry
// their wire code, so errors.Is(err, ErrOverloaded) (and the rest of
// the taxonomy) behaves identically to the in-process Service — the
// load generator and acsel-predict -remote rely on that symmetry.
// The zero value is not usable; BaseURL is required.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:9090".
	BaseURL string
	// HTTP is the underlying client (http.DefaultClient if nil).
	HTTP *http.Client
	// Timeout bounds each call in addition to the caller's context
	// (default 5s).
	Timeout time.Duration
}

// Select answers one query remotely.
func (c *Client) Select(ctx context.Context, req Request) (Response, error) {
	var resp Response
	if err := c.call(ctx, http.MethodPost, PathSelect, req, &resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// SelectBatch answers a batch remotely. Results and errors are parallel
// to reqs, mirroring Service.SelectBatch.
func (c *Client) SelectBatch(ctx context.Context, reqs []Request) ([]Response, []error, error) {
	var out BatchResponse
	if err := c.call(ctx, http.MethodPost, PathSelectBatch, BatchRequest{Requests: reqs}, &out); err != nil {
		return nil, nil, err
	}
	if len(out.Results) != len(reqs) {
		return nil, nil, fmt.Errorf("query: batch answered %d of %d items", len(out.Results), len(reqs))
	}
	resps := make([]Response, len(reqs))
	errs := make([]error, len(reqs))
	for i, item := range out.Results {
		switch {
		case item.Error != "":
			errs[i] = errFromCode(item.Code, item.Error)
		case item.Response != nil:
			resps[i] = *item.Response
		default:
			errs[i] = fmt.Errorf("query: batch item %d carries neither response nor error", i)
		}
	}
	return resps, errs, nil
}

// Models reports the server's live model generation.
func (c *Client) Models(ctx context.Context) (ModelsInfo, error) {
	var info ModelsInfo
	if err := c.call(ctx, http.MethodGet, PathModels, nil, &info); err != nil {
		return ModelsInfo{}, err
	}
	return info, nil
}

// Reload asks the server to hot-load the model file at path (a path on
// the server's filesystem) and returns the new generation.
func (c *Client) Reload(ctx context.Context, path string) (ModelsInfo, error) {
	var info ModelsInfo
	if err := c.call(ctx, http.MethodPost, PathModels, ReloadRequest{Path: path}, &info); err != nil {
		return ModelsInfo{}, err
	}
	return info, nil
}

func (c *Client) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 5 * time.Second
	}
	return c.Timeout
}

// call runs one JSON round trip and surfaces wire errors as typed ones.
func (c *Client) call(ctx context.Context, method, path string, body, out any) error {
	actx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("query: encode %s %s: %w", method, path, err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(actx, method, c.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("query: %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("query: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("query: %s %s: read body: %w", method, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if jerr := json.Unmarshal(data, &eb); jerr == nil && eb.Code != "" {
			return errFromCode(eb.Code, eb.Error)
		}
		return fmt.Errorf("query: %s %s: %s: %s", method, path, resp.Status, truncate(data, 200))
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("query: %s %s: decode response: %w", method, path, err)
		}
	}
	return nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}
