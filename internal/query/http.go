package query

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"

	"acsel/internal/core"
)

// Wire paths of the selection service.
const (
	// PathSelect answers one selection query (POST Request → Response).
	PathSelect = "/v1/select"
	// PathSelectBatch answers a batch (POST BatchRequest → BatchResponse).
	PathSelectBatch = "/v1/select/batch"
	// PathModels reports the live model generation (GET → ModelsInfo)
	// and hot-reloads a new model (POST ReloadRequest → ModelsInfo).
	PathModels = "/v1/models"
)

// maxBodyBytes bounds any request body; a single query is under 200
// bytes and a full batch a few tens of KB, so anything near the limit
// is garbage.
const maxBodyBytes = 1 << 20

// Error codes carried in error bodies so clients recover the typed
// error across the wire (errors.Is works the same local and -remote).
const (
	codeBadRequest    = "bad_request"
	codeUnknownKernel = "unknown_kernel"
	codeOverloaded    = "overloaded"
	codeBatchTooLarge = "batch_too_large"
	codeClosed        = "closed"
	codeInternal      = "internal"
)

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// BatchRequest is the wire form of a batched query.
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// BatchItem is one batch result: exactly one of Response or Error is
// meaningful, discriminated by Error being empty.
type BatchItem struct {
	Response *Response `json:"response,omitempty"`
	Error    string    `json:"error,omitempty"`
	Code     string    `json:"code,omitempty"`
}

// BatchResponse carries per-item results, parallel to the request.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// ModelsInfo describes the live model generation.
type ModelsInfo struct {
	ModelHash   string   `json:"model_hash"`
	ModelSeq    uint64   `json:"model_seq"`
	CapQuantumW float64  `json:"cap_quantum_w"`
	Kernels     []string `json:"kernels"`
}

// ReloadRequest asks the server to load a model file and swap it in.
type ReloadRequest struct {
	Path string `json:"path"`
}

// DecodeSelectRequest is the strict decoder behind PathSelect: unknown
// fields, trailing data, oversized bodies, non-finite caps, and
// negative z all fail with an ErrBadRequest-wrapped error, never a
// panic — the FuzzSelectRequestDecode target pins that contract.
func DecodeSelectRequest(r io.Reader) (Request, error) {
	var req Request
	if err := decodeStrict(r, &req); err != nil {
		return Request{}, err
	}
	if err := req.Validate(); err != nil {
		return Request{}, err
	}
	return req, nil
}

// decodeStrict decodes exactly one JSON value with unknown fields
// rejected and the body size bounded.
func decodeStrict(r io.Reader, out any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); !errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: trailing data after JSON body", ErrBadRequest)
	}
	return nil
}

// codeFor maps a typed service error to its wire code.
func codeFor(err error) string {
	switch {
	case errors.Is(err, ErrBadRequest):
		return codeBadRequest
	case errors.Is(err, ErrUnknownKernel):
		return codeUnknownKernel
	case errors.Is(err, ErrOverloaded):
		return codeOverloaded
	case errors.Is(err, ErrBatchTooLarge):
		return codeBatchTooLarge
	case errors.Is(err, ErrClosed):
		return codeClosed
	}
	return codeInternal
}

// statusFor maps a typed service error to its HTTP status. Overload is
// 429 — the admission-control contract the load generator retries on.
func statusFor(err error) int {
	switch codeFor(err) {
	case codeBadRequest:
		return http.StatusBadRequest
	case codeUnknownKernel:
		return http.StatusNotFound
	case codeOverloaded:
		return http.StatusTooManyRequests
	case codeBatchTooLarge:
		return http.StatusRequestEntityTooLarge
	case codeClosed:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// errFromCode reverses codeFor on the client side.
func errFromCode(code, msg string) error {
	var base error
	switch code {
	case codeBadRequest:
		base = ErrBadRequest
	case codeUnknownKernel:
		base = ErrUnknownKernel
	case codeOverloaded:
		base = ErrOverloaded
	case codeBatchTooLarge:
		base = ErrBatchTooLarge
	case codeClosed:
		base = ErrClosed
	default:
		return fmt.Errorf("query: remote error (%s): %s", code, msg)
	}
	return fmt.Errorf("%w: remote: %s", base, msg)
}

// handler serves the query API for one Service.
type handler struct {
	s *Service
}

// NewHandler mounts the selection API for s on a fresh mux. The caller
// owns the Service lifecycle; closing it makes every route answer 503.
func NewHandler(s *Service) http.Handler {
	h := &handler{s: s}
	mux := http.NewServeMux()
	mux.HandleFunc(PathSelect, h.handleSelect)
	mux.HandleFunc(PathSelectBatch, h.handleBatch)
	mux.HandleFunc(PathModels, h.handleModels)
	return mux
}

// Register mounts the selection API routes on an existing mux (the
// acsel-serve pattern: one mux carries /metrics, fleet, and queries).
func Register(mux *http.ServeMux, s *Service) {
	h := &handler{s: s}
	mux.HandleFunc(PathSelect, h.handleSelect)
	mux.HandleFunc(PathSelectBatch, h.handleBatch)
	mux.HandleFunc(PathModels, h.handleModels)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusFor(err), errorBody{Error: err.Error(), Code: codeFor(err)})
}

func (h *handler) handleSelect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed,
			errorBody{Error: "POST only", Code: codeBadRequest})
		return
	}
	req, err := DecodeSelectRequest(r.Body)
	if err != nil {
		writeError(w, err)
		return
	}
	resp, err := h.s.Select(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed,
			errorBody{Error: "POST only", Code: codeBadRequest})
		return
	}
	var breq BatchRequest
	if err := decodeStrict(r.Body, &breq); err != nil {
		writeError(w, err)
		return
	}
	resps, errs, err := h.s.SelectBatch(r.Context(), breq.Requests)
	if err != nil {
		writeError(w, err)
		return
	}
	out := BatchResponse{Results: make([]BatchItem, len(resps))}
	for i := range resps {
		if errs[i] != nil {
			out.Results[i] = BatchItem{Error: errs[i].Error(), Code: codeFor(errs[i])}
			continue
		}
		resp := resps[i]
		out.Results[i] = BatchItem{Response: &resp}
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *handler) handleModels(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, h.info())
	case http.MethodPost:
		var req ReloadRequest
		if err := decodeStrict(r.Body, &req); err != nil {
			writeError(w, err)
			return
		}
		if req.Path == "" {
			writeError(w, fmt.Errorf("%w: missing model path", ErrBadRequest))
			return
		}
		m, err := loadModelFile(req.Path)
		if err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
			return
		}
		if _, _, err := h.s.Reload(m); err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
			return
		}
		writeJSON(w, http.StatusOK, h.info())
	default:
		w.Header().Set("Allow", "GET, POST")
		writeJSON(w, http.StatusMethodNotAllowed,
			errorBody{Error: "GET or POST only", Code: codeBadRequest})
	}
}

func (h *handler) info() ModelsInfo {
	hash, seq := h.s.Generation()
	return ModelsInfo{
		ModelHash:   hash,
		ModelSeq:    seq,
		CapQuantumW: h.s.CapQuantumW(),
		Kernels:     h.s.Kernels(),
	}
}

// loadModelFile reads one trained model from disk.
func loadModelFile(path string) (*core.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.Load(f)
}
