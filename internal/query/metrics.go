package query

import "acsel/internal/metrics"

// Metric families of the selection query service. Admission control is
// observable by construction: every request increments exactly one of
// served/shed/error, queue time is a histogram, and cache and
// coalescing effectiveness are counters the soak test reads back.
var (
	mRequests = metrics.NewCounterVec("acsel_query_requests_total",
		"Selection queries received, by outcome (served, cached, shed, error).",
		"outcome")
	mCacheHits = metrics.NewCounter("acsel_query_cache_hits_total",
		"Selections served from the LRU prediction cache.")
	mCacheMisses = metrics.NewCounter("acsel_query_cache_misses_total",
		"Selections that had to be computed (cache miss or cache disabled).")
	mCoalesced = metrics.NewCounter("acsel_query_coalesced_total",
		"Requests that piggybacked on an identical in-flight computation instead of enqueuing their own.")
	mShed = metrics.NewCounter("acsel_query_shed_total",
		"Requests rejected by admission control because the worker queue was full.")
	mReloads = metrics.NewCounter("acsel_query_model_reloads_total",
		"Hot model reloads applied via atomic generation swap.")
	mQueueWait = metrics.NewHistogram("acsel_query_queue_wait_seconds",
		"Time a request spent queued before a worker picked it up.",
		metrics.ExponentialBuckets(1e-5, 2.5, 14))
	mSelectSeconds = metrics.NewHistogram("acsel_query_select_seconds",
		"Worker-side computation time for one selection (prediction reuse included).",
		metrics.ExponentialBuckets(1e-6, 2.5, 14))
	mQueueFill = metrics.NewGauge("acsel_query_queue_fill_ratio",
		"Instantaneous worker-queue occupancy as a fraction of its depth limit.")
	mCachePurged = metrics.NewCounter("acsel_query_cache_purged_total",
		"Cached selections invalidated because their model hash no longer matched the live generation.")
)
