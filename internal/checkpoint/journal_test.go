package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func tempJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "state.journal")
}

func mustAppend(t *testing.T, w *Writer, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	path := tempJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Type: 1, Data: []byte(`{"snapshot":true}`)},
		{Type: 2, Data: []byte(`{"step":0}`)},
		{Type: 2, Data: nil},
		{Type: 7, Data: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	mustAppend(t, w, want...)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, info, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Truncated {
		t.Error("clean journal reported truncated")
	}
	if info.Records != len(want) {
		t.Errorf("records = %d, want %d", info.Records, len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %v\nwant %v", got, want)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != info.ValidBytes {
		t.Errorf("ValidBytes %d != file size %d", info.ValidBytes, st.Size())
	}
}

func TestEmptyJournal(t *testing.T) {
	path := tempJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, info, err := ReadFile(path)
	if err != nil || len(recs) != 0 || info.Truncated {
		t.Fatalf("empty journal: recs=%v info=%+v err=%v", recs, info, err)
	}
}

func TestBadHeaderRejected(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("ACS"),
		[]byte("NOPE\x01\x00\x00\x00"),
		append([]byte("ACSJ"), 0x63, 0x00, 0, 0), // version 99
	} {
		if _, _, err := Decode(data); !errors.Is(err, ErrBadHeader) {
			t.Errorf("Decode(%q) err = %v, want ErrBadHeader", data, err)
		}
	}
}

func TestMissingFile(t *testing.T) {
	if _, _, err := ReadFile(filepath.Join(t.TempDir(), "nope.journal")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("err = %v, want not-exist", err)
	}
}

// writeJournal builds a valid journal file with n records and returns
// its path and bytes.
func writeJournal(t *testing.T, n int) (string, []byte) {
	t.Helper()
	path := tempJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		mustAppend(t, w, Record{Type: byte(i%3 + 1), Data: []byte{byte(i), byte(i >> 8), 0xFE}})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

func TestTornTailTruncates(t *testing.T) {
	_, data := writeJournal(t, 5)
	// Chop bytes off the end: every cut between the end of record 3
	// and the end of record 5 must still yield the first records.
	full, _, err := Decode(data)
	if err != nil || len(full) != 5 {
		t.Fatalf("baseline decode: %d records, err %v", len(full), err)
	}
	// Record-boundary offsets: a cut landing exactly on one is a
	// shorter clean journal, not a torn one.
	boundary := map[int]bool{}
	off := headerLen
	for off < len(data) {
		n := int(uint32(data[off]) | uint32(data[off+1])<<8)
		off += frameLen + n
		boundary[off] = true
	}
	for cut := len(data) - 1; cut > headerLen; cut-- {
		recs, info, err := Decode(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: err %v", cut, err)
		}
		if info.Truncated == boundary[cut] {
			t.Errorf("cut %d: truncated=%v, want %v", cut, info.Truncated, !boundary[cut])
		}
		for i, r := range recs {
			if !reflect.DeepEqual(r, full[i]) {
				t.Fatalf("cut %d: record %d diverged", cut, i)
			}
		}
	}
}

func TestCorruptMiddleStopsAtPrefix(t *testing.T) {
	_, data := writeJournal(t, 4)
	full, _, _ := Decode(data)
	// Flip one bit in the third record's payload; reads must stop
	// after the second record.
	off := int(headerLen)
	for i := 0; i < 2; i++ {
		n := int(uint32(data[off]) | uint32(data[off+1])<<8)
		off += frameLen + n
	}
	mut := append([]byte(nil), data...)
	mut[off+frameLen] ^= 0x01
	recs, info, err := Decode(mut)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || !info.Truncated {
		t.Errorf("got %d records (truncated=%v), want 2 truncated", len(recs), info.Truncated)
	}
	if !reflect.DeepEqual(recs, full[:2]) {
		t.Error("prefix records corrupted")
	}
}

func TestCorruptLengthBounded(t *testing.T) {
	_, data := writeJournal(t, 2)
	mut := append([]byte(nil), data...)
	// Smash the first record's length prefix to a huge value: the
	// reader must refuse to allocate and stop at zero records.
	mut[headerLen] = 0xFF
	mut[headerLen+1] = 0xFF
	mut[headerLen+2] = 0xFF
	mut[headerLen+3] = 0x7F
	recs, info, err := Decode(mut)
	if err != nil || len(recs) != 0 || !info.Truncated {
		t.Errorf("oversize length: recs=%d truncated=%v err=%v", len(recs), info.Truncated, err)
	}
}

func TestOpenAppendTruncatesTornTailAndResumes(t *testing.T) {
	path, data := writeJournal(t, 3)
	// Tear the journal mid-record 3.
	if err := os.WriteFile(path, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	w, recs, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
	mustAppend(t, w, Record{Type: 9, Data: []byte("after crash")})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs2, info, err := ReadFile(path)
	if err != nil || info.Truncated {
		t.Fatalf("post-recovery read: info=%+v err=%v", info, err)
	}
	if len(recs2) != 3 || recs2[2].Type != 9 || string(recs2[2].Data) != "after crash" {
		t.Errorf("post-recovery records: %v", recs2)
	}
}

func TestOpenAppendCreatesMissing(t *testing.T) {
	path := tempJournal(t)
	w, recs, err := OpenAppend(path)
	if err != nil || recs != nil {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
	mustAppend(t, w, Record{Type: 1, Data: []byte("x")})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs2, _, err := ReadFile(path)
	if err != nil || len(recs2) != 1 {
		t.Fatalf("recs=%v err=%v", recs2, err)
	}
}

func TestWriteAtomicCompacts(t *testing.T) {
	path, _ := writeJournal(t, 6)
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	snap := []Record{{Type: 1, Data: []byte(`{"compacted":true}`)}}
	if err := WriteAtomic(path, snap); err != nil {
		t.Fatal(err)
	}
	recs, info, err := ReadFile(path)
	if err != nil || info.Truncated {
		t.Fatalf("compacted read: info=%+v err=%v", info, err)
	}
	if len(recs) != 1 || string(recs[0].Data) != `{"compacted":true}` {
		t.Errorf("compacted records: %v", recs)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink journal: %d -> %d", before.Size(), after.Size())
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after compaction, want 1", len(entries))
	}
}

func TestAppendAfterCompaction(t *testing.T) {
	path, _ := writeJournal(t, 2)
	if err := WriteAtomic(path, []Record{{Type: 1, Data: []byte("snap")}}); err != nil {
		t.Fatal(err)
	}
	w, recs, err := OpenAppend(path)
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
	mustAppend(t, w, Record{Type: 2, Data: []byte("step")})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs2, _, err := ReadFile(path)
	if err != nil || len(recs2) != 2 {
		t.Fatalf("recs=%v err=%v", recs2, err)
	}
}
