package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode asserts the tolerant reader's contract under
// arbitrary corruption: whatever bytes arrive, Decode must never
// panic, and its answer must be one of (a) ErrBadHeader, or (b) a
// valid-prefix result whose ValidBytes re-decodes to the same records
// with no truncation — i.e. truncation is idempotent, so a recovered
// journal recovers identically a second time.
func FuzzCheckpointDecode(f *testing.F) {
	// Seed with a genuine journal so mutations explore realistic
	// framing, plus the degenerate shapes.
	valid := header()
	for i := 0; i < 4; i++ {
		valid = append(valid, frame(Record{Type: byte(i + 1), Data: []byte{0xA0, byte(i), 0x0F}})...)
	}
	f.Add(valid)
	f.Add(header())
	f.Add([]byte{})
	f.Add([]byte("ACSJ"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, info, err := Decode(data)
		if err != nil {
			if recs != nil {
				t.Fatalf("error %v alongside %d records", err, len(recs))
			}
			return
		}
		if info.ValidBytes < headerLen || info.ValidBytes > int64(len(data)) {
			t.Fatalf("ValidBytes %d out of range [8,%d]", info.ValidBytes, len(data))
		}
		if info.Records != len(recs) {
			t.Fatalf("info.Records %d != len(recs) %d", info.Records, len(recs))
		}
		// Re-decoding the valid prefix must be clean and identical.
		recs2, info2, err2 := Decode(data[:info.ValidBytes])
		if err2 != nil {
			t.Fatalf("re-decode of valid prefix errored: %v", err2)
		}
		if info2.Truncated {
			t.Fatal("re-decode of valid prefix reported truncation")
		}
		if len(recs2) != len(recs) {
			t.Fatalf("re-decode found %d records, want %d", len(recs2), len(recs))
		}
		for i := range recs {
			if recs[i].Type != recs2[i].Type || !bytes.Equal(recs[i].Data, recs2[i].Data) {
				t.Fatalf("record %d changed across re-decode", i)
			}
		}
	})
}
