package checkpoint

import "acsel/internal/metrics"

// Metric families of the crash-safety layer. Restart-time recovery is
// exactly the moment an operator is staring at dashboards, so every
// journal action leaves a quantitative trail: how much was written,
// how often snapshots compacted the log, and whether any read ever
// had to drop a torn tail.
var (
	mAppended = metrics.NewCounter("acsel_checkpoint_records_appended_total",
		"Records framed and written to a checkpoint journal (appends and compaction rewrites).")
	mBytes = metrics.NewCounter("acsel_checkpoint_bytes_written_total",
		"Bytes written to checkpoint journals, including framing overhead.")
	mSnapshots = metrics.NewCounter("acsel_checkpoint_snapshots_total",
		"Atomic snapshot+compaction rewrites of a journal.")
	mTruncated = metrics.NewCounter("acsel_checkpoint_truncated_reads_total",
		"Journal reads that ended in a torn or corrupt tail record and dropped it.")
)
