// Package checkpoint is the crash-safety substrate of the long-running
// runtime service: an append-only record journal with length-prefixed,
// CRC32C-checksummed framing, a versioned header, atomic
// snapshot+compaction (temp+rename, the same discipline as
// core.TrainCached's model cache), and a tolerant reader that treats a
// torn or corrupt tail record as the end of the journal rather than an
// error — exactly what a kill -9 mid-append leaves behind.
//
// The package frames opaque records; what goes inside them (runtime
// snapshots, step records) is the caller's schema. Record payloads
// carry a one-byte type tag so readers can dispatch without decoding.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Journal file layout:
//
//	header:  "ACSJ" magic (4 bytes) | format version u16 LE | 2 reserved zero bytes
//	record:  payload length u32 LE | CRC32C(payload) u32 LE | payload
//	payload: type byte | data
//
// The CRC covers the payload only; a corrupted length field is caught
// by the bounds check (a plausible-but-wrong length lands mid-stream
// and fails the CRC instead).

// Version is the journal format version written into new headers.
// Readers reject other versions outright: the header is the journal's
// head, not its tail, so there is no valid prefix to salvage.
const Version = 1

const (
	headerLen = 8
	frameLen  = 8 // length + CRC prefix of each record
)

// MaxRecordLen bounds a single record's payload. A corrupt length
// prefix must not cause a multi-gigabyte allocation; any in-range
// corruption is still caught by the CRC.
const MaxRecordLen = 1 << 26 // 64 MiB

var magic = [4]byte{'A', 'C', 'S', 'J'}

// castagnoli is the CRC32C polynomial table (the checksum used by
// ext4, Btrfs, and every journal that cares about torn writes).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadHeader reports a journal whose header is missing, truncated,
// or of an unknown version. Unlike tail corruption this is fatal: the
// file is not a journal we can read any prefix of.
var ErrBadHeader = errors.New("checkpoint: bad or unsupported journal header")

// Record is one framed journal entry. Type dispatches the payload
// schema; Data is the caller's encoding.
type Record struct {
	Type byte
	Data []byte
}

// Info reports what a tolerant read found.
type Info struct {
	// Records is how many intact records were decoded.
	Records int
	// ValidBytes is the byte offset of the end of the last intact
	// record (i.e. the length a torn journal should be truncated to).
	ValidBytes int64
	// Truncated is true when the file ended in a torn or corrupt
	// record that the reader dropped.
	Truncated bool
}

// header renders the 8-byte journal header.
func header() []byte {
	h := make([]byte, headerLen)
	copy(h, magic[:])
	binary.LittleEndian.PutUint16(h[4:], Version)
	return h
}

// frame renders one record as its on-disk bytes.
func frame(rec Record) []byte {
	payload := make([]byte, 1+len(rec.Data))
	payload[0] = rec.Type
	copy(payload[1:], rec.Data)
	buf := make([]byte, frameLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	copy(buf[frameLen:], payload)
	return buf
}

// Decode parses journal bytes tolerantly: it returns every intact
// record up to the first torn or corrupt one and reports where the
// valid prefix ends. Tail corruption is not an error — it is the
// expected shape of a crash — but a bad header is (ErrBadHeader).
func Decode(data []byte) ([]Record, Info, error) {
	if len(data) < headerLen || [4]byte(data[:4]) != magic {
		return nil, Info{}, ErrBadHeader
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return nil, Info{}, fmt.Errorf("%w: version %d (want %d)", ErrBadHeader, v, Version)
	}
	var recs []Record
	info := Info{ValidBytes: headerLen}
	off := int64(headerLen)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, info, nil // clean end
		}
		if len(rest) < frameLen {
			break // torn frame prefix
		}
		n := binary.LittleEndian.Uint32(rest[0:])
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n == 0 || n > MaxRecordLen || int64(len(rest)) < frameLen+int64(n) {
			break // corrupt length or torn payload
		}
		payload := rest[frameLen : frameLen+int64(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			break // bit rot or an overwritten tail
		}
		recs = append(recs, Record{Type: payload[0], Data: append([]byte(nil), payload[1:]...)})
		off += frameLen + int64(n)
		info.Records++
		info.ValidBytes = off
	}
	info.Truncated = true
	mTruncated.Inc()
	return recs, info, nil
}

// ReadFile reads a journal from disk tolerantly (see Decode).
func ReadFile(path string) ([]Record, Info, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, Info{}, err
	}
	return Decode(data)
}

// Writer appends records to a journal file. It is not safe for
// concurrent use; the runtime service owns one writer.
type Writer struct {
	f *os.File
}

// Create creates (or truncates) a journal at path and writes the
// header.
func Create(path string) (*Writer, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(header()); err != nil {
		f.Close() //lint:ignore errcheck already failing
		return nil, err
	}
	return &Writer{f: f}, nil
}

// OpenAppend opens an existing journal for appending, first reading
// its intact records and truncating any torn tail so new appends land
// on a valid prefix. A missing file is created fresh. The intact
// records are returned so recovery and appending share one pass.
func OpenAppend(path string) (*Writer, []Record, error) {
	recs, info, err := ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		w, cerr := Create(path)
		return w, nil, cerr
	}
	if err != nil {
		return nil, nil, err
	}
	if info.Truncated {
		if err := os.Truncate(path, info.ValidBytes); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &Writer{f: f}, recs, nil
}

// Append frames and writes one record. The frame is written with a
// single Write call so a crash tears at most the final record —
// which Decode then drops.
func (w *Writer) Append(rec Record) error {
	buf := frame(rec)
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	mAppended.Inc()
	mBytes.Add(float64(len(buf)))
	return nil
}

// Sync flushes appended records to stable storage.
func (w *Writer) Sync() error { return w.f.Sync() }

// Close syncs and closes the journal file.
func (w *Writer) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close() //lint:ignore errcheck already failing
		return err
	}
	return w.f.Close()
}

// WriteAtomic replaces the journal at path with exactly recs, via a
// temp file in the same directory renamed over the target — the
// snapshot+compaction step. A crash at any point leaves either the
// old journal or the new one, never a hybrid.
func WriteAtomic(path string, recs []Record) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	cleanup := func() {
		tmp.Close()           //lint:ignore errcheck already failing
		os.Remove(tmp.Name()) //lint:ignore errcheck best-effort cleanup
	}
	if _, err := tmp.Write(header()); err != nil {
		cleanup()
		return err
	}
	var bytes float64
	for _, rec := range recs {
		buf := frame(rec)
		if _, err := tmp.Write(buf); err != nil {
			cleanup()
			return err
		}
		bytes += float64(len(buf))
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name()) //lint:ignore errcheck best-effort cleanup
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name()) //lint:ignore errcheck best-effort cleanup
		return err
	}
	mSnapshots.Inc()
	mAppended.Add(float64(len(recs)))
	mBytes.Add(bytes)
	return nil
}
