package fault

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestKindAndSiteStrings(t *testing.T) {
	kinds := []Kind{SensorDropout, SensorStuck, SensorSpike, SensorDrift,
		PStateFail, PStateDelay, CounterCorrupt, KernelHang,
		NetDrop, NetDelay, NetCorrupt}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d renders %q", int(k), s)
		}
		seen[s] = true
	}
	if Kind(99).String() == "" || Site(99).String() == "" {
		t.Error("unknown enum renders empty")
	}
	for _, s := range []Site{SiteSMU, SitePState, SiteCounter, SiteKernel, SiteNet} {
		if s.String() == "" {
			t.Errorf("site %d renders empty", int(s))
		}
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if fs := in.At(SiteSMU, "k|0", 3); fs != nil {
		t.Errorf("nil injector returned %v", fs)
	}
	if in.Active(SiteSMU) {
		t.Error("nil injector active")
	}
	if in.Scenario().Name != "clean" || in.Seed() != 0 || in.String() != "clean:0" {
		t.Error("nil injector identity")
	}
}

func TestAtIsDeterministicAndOrderIndependent(t *testing.T) {
	sc, ok := ScenarioByName("blackout")
	if !ok {
		t.Fatal("no blackout scenario")
	}
	a := NewInjector(sc, 42)
	b := NewInjector(sc, 42)
	type ev struct {
		site Site
		key  string
		iter int
	}
	events := []ev{
		{SiteSMU, "LULESH/Small/CalcQForElems|3", 0},
		{SiteSMU, "LULESH/Small/CalcQForElems|3", 1},
		{SitePState, "LULESH/Small/CalcQForElems", 2},
		{SiteCounter, "CoMD/Large/ComputeForceLJ|17", 5},
		{SiteKernel, "SMC/Default/Hypterm|9", 8},
	}
	// Query a in order and b in reverse: identical resolutions.
	got := map[ev][]Fault{}
	for _, e := range events {
		got[e] = a.At(e.site, e.key, e.iter)
	}
	for i := len(events) - 1; i >= 0; i-- {
		e := events[i]
		if !reflect.DeepEqual(b.At(e.site, e.key, e.iter), got[e]) {
			t.Errorf("event %v resolved differently across call orders", e)
		}
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	sc, _ := ScenarioByName("sensor-dropout")
	a := NewInjector(sc, 1)
	b := NewInjector(sc, 2)
	same := true
	for i := 0; i < 200; i++ {
		fa := a.At(SiteSMU, EventKey("k", i), 0)
		fb := b.At(SiteSMU, EventKey("k", i), 0)
		if (fa == nil) != (fb == nil) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical dropout schedules over 200 events")
	}
}

func TestRatesApproximateProbability(t *testing.T) {
	sc, _ := ScenarioByName("sensor-dropout")
	in := NewInjector(sc, 7)
	hits := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if len(in.At(SiteSMU, EventKey("kernel", i), 0)) > 0 {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.15 || rate > 0.25 {
		t.Errorf("dropout rate %.3f, want ~0.20", rate)
	}
}

func TestDriftGrowsWithIterationAndSaturates(t *testing.T) {
	sc := Scenario{Name: "d", Rules: []Rule{{Site: SiteSMU, Kind: SensorDrift, Prob: 1, Magnitude: 0.02}}}
	in := NewInjector(sc, 1)
	f1 := in.At(SiteSMU, "k|0", 1)
	f10 := in.At(SiteSMU, "k|0", 10)
	f1000 := in.At(SiteSMU, "k|0", 1000)
	if len(f1) != 1 || len(f10) != 1 || len(f1000) != 1 {
		t.Fatalf("drift not always injected: %v %v %v", f1, f10, f1000)
	}
	if f1[0].Magnitude >= f10[0].Magnitude {
		t.Errorf("drift did not grow: %v -> %v", f1[0].Magnitude, f10[0].Magnitude)
	}
	if f1000[0].Magnitude != MaxDriftFrac {
		t.Errorf("drift %v not capped at %v", f1000[0].Magnitude, MaxDriftFrac)
	}
}

func TestActivePerSite(t *testing.T) {
	sc, _ := ScenarioByName("pstate-flaky")
	in := NewInjector(sc, 1)
	if !in.Active(SitePState) {
		t.Error("pstate-flaky inactive at SitePState")
	}
	if in.Active(SiteCounter) {
		t.Error("pstate-flaky active at SiteCounter")
	}
}

func TestConcurrentAtIsRaceFreeAndStable(t *testing.T) {
	sc, _ := ScenarioByName("blackout")
	in := NewInjector(sc, 3)
	want := in.At(SiteSMU, "k|5", 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if !reflect.DeepEqual(in.At(SiteSMU, "k|5", 2), want) {
					t.Error("concurrent resolution diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestScenarioCatalog(t *testing.T) {
	names := ScenarioNames()
	if len(names) < 6 {
		t.Fatalf("only %d scenarios", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate scenario %q", n)
		}
		seen[n] = true
		sc, ok := ScenarioByName(n)
		if !ok || sc.Name != n || len(sc.Rules) == 0 || sc.Description == "" {
			t.Errorf("scenario %q malformed: %+v", n, sc)
		}
		for _, r := range sc.Rules {
			if r.Prob <= 0 || r.Prob > 1 {
				t.Errorf("scenario %q rule %v has probability %v", n, r.Kind, r.Prob)
			}
		}
	}
	if _, ok := ScenarioByName("no-such"); ok {
		t.Error("unknown scenario resolved")
	}
}

func TestParsePlan(t *testing.T) {
	in, err := ParsePlan("sensor-stuck:99")
	if err != nil {
		t.Fatal(err)
	}
	if in.Scenario().Name != "sensor-stuck" || in.Seed() != 99 {
		t.Errorf("parsed %v seed %d", in.Scenario().Name, in.Seed())
	}
	if in.String() != "sensor-stuck:99" {
		t.Errorf("round trip: %s", in)
	}
	in, err = ParsePlan("kernel-hang")
	if err != nil || in.Seed() != 1 {
		t.Errorf("default seed: %v %v", in, err)
	}
	if _, err := ParsePlan("nope:1"); err == nil {
		t.Error("unknown scenario parsed")
	}
	if _, err := ParsePlan("sensor-stuck:abc"); err == nil {
		t.Error("bad seed parsed")
	}
}

func TestEventKey(t *testing.T) {
	if EventKey("a/b", 7) != "a/b|7" {
		t.Errorf("EventKey = %q", EventKey("a/b", 7))
	}
}

func TestParsePlanEdgeCases(t *testing.T) {
	cases := []struct {
		plan string
		want string // error substring
	}{
		{"", "empty plan"},
		{":5", "names no scenario"},
		{":", "bad plan seed"},
		{"blackout:", "bad plan seed"},
		{"blackout:1:2", "unknown scenario"}, // the last colon splits; "blackout:1" is no scenario
		{"blackout:+7", ""},                  // ParseInt accepts an explicit sign
		{"blackout:-3", ""},                  // negative seeds are legal plan identities
		{"blackout: 7", "bad plan seed"},
	}
	for _, tc := range cases {
		in, err := ParsePlan(tc.plan)
		if tc.want == "" {
			if err != nil {
				t.Errorf("ParsePlan(%q): unexpected error %v", tc.plan, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("ParsePlan(%q) = %v, want error containing %q", tc.plan, in, tc.want)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParsePlan(%q) error %q does not mention %q", tc.plan, err, tc.want)
		}
	}
}

func TestScenarioValidate(t *testing.T) {
	// Every built-in scenario must pass its own gate.
	for _, sc := range Scenarios() {
		if err := sc.Validate(); err != nil {
			t.Errorf("built-in scenario %q fails validation: %v", sc.Name, err)
		}
	}
	// An empty rule set is a legal (if pointless) scenario; "clean" is
	// just not in the catalog.
	if err := (Scenario{Name: "noop"}).Validate(); err != nil {
		t.Errorf("empty rule set rejected: %v", err)
	}

	bad := []struct {
		name string
		sc   Scenario
		want string
	}{
		{"empty name", Scenario{}, "empty name"},
		{"zero probability", Scenario{Name: "s", Rules: []Rule{
			{Site: SiteSMU, Kind: SensorDropout, Prob: 0}}}, "outside (0, 1]"},
		{"negative probability", Scenario{Name: "s", Rules: []Rule{
			{Site: SiteSMU, Kind: SensorDropout, Prob: -0.1}}}, "outside (0, 1]"},
		{"probability above one", Scenario{Name: "s", Rules: []Rule{
			{Site: SiteSMU, Kind: SensorDropout, Prob: 1.5}}}, "outside (0, 1]"},
		{"NaN probability", Scenario{Name: "s", Rules: []Rule{
			{Site: SiteSMU, Kind: SensorDropout, Prob: math.NaN()}}}, "outside (0, 1]"},
		{"NaN magnitude", Scenario{Name: "s", Rules: []Rule{
			{Site: SiteSMU, Kind: SensorStuck, Prob: 0.5, Magnitude: math.NaN()}}}, "magnitude"},
		{"infinite magnitude", Scenario{Name: "s", Rules: []Rule{
			{Site: SiteSMU, Kind: SensorSpike, Prob: 0.5, Magnitude: math.Inf(1)}}}, "magnitude"},
		{"negative magnitude", Scenario{Name: "s", Rules: []Rule{
			{Site: SiteSMU, Kind: SensorStuck, Prob: 0.5, Magnitude: -2}}}, "magnitude"},
		{"duplicate site+kind", Scenario{Name: "s", Rules: []Rule{
			{Site: SitePState, Kind: PStateFail, Prob: 0.2},
			{Site: SitePState, Kind: PStateDelay, Prob: 0.2, Magnitude: 2},
			{Site: SitePState, Kind: PStateFail, Prob: 0.4}}}, "duplicates"},
	}
	for _, tc := range bad {
		err := tc.sc.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !errors.Is(err, ErrBadScenario) {
			t.Errorf("%s: error %v is not ErrBadScenario", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// The same (kind, site) pair at different sites is not a duplicate.
	ok := Scenario{Name: "s", Rules: []Rule{
		{Site: SiteSMU, Kind: SensorDropout, Prob: 0.2},
		{Site: SiteCounter, Kind: SensorDropout, Prob: 0.2},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("cross-site rule pair rejected: %v", err)
	}
}
