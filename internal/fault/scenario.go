package fault

import (
	"errors"
	"fmt"
	"math"
)

// Scenario is a named fault plan body: the rule set one chaos run
// injects. Rates and magnitudes follow the failure modes the related
// work treats as routine in deployment — sensor dropout and noise
// (arXiv:1710.10325), model-input mismatch (arXiv:2003.08305) — plus
// the DVFS-transition and hang failures any P-state driver exhibits.
type Scenario struct {
	Name        string
	Description string
	Rules       []Rule
}

// ErrBadScenario reports a scenario Validate rejected.
var ErrBadScenario = errors.New("fault: invalid scenario")

// Validate checks a scenario's shape: a name, probabilities in (0, 1],
// finite non-negative magnitudes, and no duplicate (site, kind) rule —
// a duplicate would double-inject silently, which is never what a plan
// author meant. Every built-in scenario validates; the check exists
// for hand-built scenarios and future catalog edits.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("%w: empty name", ErrBadScenario)
	}
	seen := map[[2]int]bool{}
	for i, r := range s.Rules {
		if math.IsNaN(r.Prob) || r.Prob <= 0 || r.Prob > 1 {
			return fmt.Errorf("%w: %s rule %d (%s at %s): probability %v outside (0, 1]",
				ErrBadScenario, s.Name, i, r.Kind, r.Site, r.Prob)
		}
		if math.IsNaN(r.Magnitude) || math.IsInf(r.Magnitude, 0) || r.Magnitude < 0 {
			return fmt.Errorf("%w: %s rule %d (%s at %s): magnitude %v is not a finite non-negative value",
				ErrBadScenario, s.Name, i, r.Kind, r.Site, r.Magnitude)
		}
		key := [2]int{int(r.Site), int(r.Kind)}
		if seen[key] {
			return fmt.Errorf("%w: %s rule %d duplicates %s at %s",
				ErrBadScenario, s.Name, i, r.Kind, r.Site)
		}
		seen[key] = true
	}
	return nil
}

// Scenarios returns the built-in scenario catalog in presentation
// order. "clean" (no rules) is deliberately absent: a nil injector is
// the clean run.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "sensor-dropout",
			Description: "SMU readings intermittently unavailable",
			Rules: []Rule{
				{Site: SiteSMU, Kind: SensorDropout, Prob: 0.20},
			},
		},
		{
			Name:        "sensor-stuck",
			Description: "SMU latches at a stale low estimate",
			Rules: []Rule{
				{Site: SiteSMU, Kind: SensorStuck, Prob: 0.30, Magnitude: 9},
			},
		},
		{
			Name:        "sensor-spike",
			Description: "transient implausible over-readings",
			Rules: []Rule{
				{Site: SiteSMU, Kind: SensorSpike, Prob: 0.15, Magnitude: 8},
			},
		},
		{
			Name:        "sensor-drift",
			Description: "estimator calibration drifts toward under-reporting",
			Rules: []Rule{
				{Site: SiteSMU, Kind: SensorDrift, Prob: 0.9, Magnitude: 0.02},
			},
		},
		{
			Name:        "pstate-flaky",
			Description: "P-state transitions fail or complete late",
			Rules: []Rule{
				{Site: SitePState, Kind: PStateFail, Prob: 0.25},
				{Site: SitePState, Kind: PStateDelay, Prob: 0.15, Magnitude: 4},
			},
		},
		{
			Name:        "counter-garbage",
			Description: "PMU readouts corrupted by multiplexing errors",
			Rules: []Rule{
				{Site: SiteCounter, Kind: CounterCorrupt, Prob: 0.35, Magnitude: 50},
			},
		},
		{
			Name:        "kernel-hang",
			Description: "iterations occasionally stall for many periods",
			Rules: []Rule{
				{Site: SiteKernel, Kind: KernelHang, Prob: 0.05, Magnitude: 20},
			},
		},
		{
			Name:        "net-flaky",
			Description: "fleet RPCs intermittently dropped, delayed, or corrupted",
			Rules: []Rule{
				{Site: SiteNet, Kind: NetDrop, Prob: 0.20},
				{Site: SiteNet, Kind: NetDelay, Prob: 0.10, Magnitude: 3},
				{Site: SiteNet, Kind: NetCorrupt, Prob: 0.10, Magnitude: 8},
			},
		},
		{
			Name:        "blackout",
			Description: "every seam degrades at once",
			Rules: []Rule{
				{Site: SiteSMU, Kind: SensorDropout, Prob: 0.10},
				{Site: SiteSMU, Kind: SensorStuck, Prob: 0.10, Magnitude: 9},
				{Site: SiteSMU, Kind: SensorSpike, Prob: 0.05, Magnitude: 8},
				{Site: SiteSMU, Kind: SensorDrift, Prob: 0.5, Magnitude: 0.01},
				{Site: SitePState, Kind: PStateFail, Prob: 0.15},
				{Site: SitePState, Kind: PStateDelay, Prob: 0.10, Magnitude: 4},
				{Site: SiteCounter, Kind: CounterCorrupt, Prob: 0.15, Magnitude: 50},
				{Site: SiteKernel, Kind: KernelHang, Prob: 0.02, Magnitude: 20},
			},
		},
	}
}

// ScenarioByName resolves a built-in scenario.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// ScenarioNames lists the built-in scenario names in catalog order.
func ScenarioNames() []string {
	var out []string
	for _, s := range Scenarios() {
		out = append(out, s.Name)
	}
	return out
}
