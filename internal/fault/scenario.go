package fault

// Scenario is a named fault plan body: the rule set one chaos run
// injects. Rates and magnitudes follow the failure modes the related
// work treats as routine in deployment — sensor dropout and noise
// (arXiv:1710.10325), model-input mismatch (arXiv:2003.08305) — plus
// the DVFS-transition and hang failures any P-state driver exhibits.
type Scenario struct {
	Name        string
	Description string
	Rules       []Rule
}

// Scenarios returns the built-in scenario catalog in presentation
// order. "clean" (no rules) is deliberately absent: a nil injector is
// the clean run.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "sensor-dropout",
			Description: "SMU readings intermittently unavailable",
			Rules: []Rule{
				{Site: SiteSMU, Kind: SensorDropout, Prob: 0.20},
			},
		},
		{
			Name:        "sensor-stuck",
			Description: "SMU latches at a stale low estimate",
			Rules: []Rule{
				{Site: SiteSMU, Kind: SensorStuck, Prob: 0.30, Magnitude: 9},
			},
		},
		{
			Name:        "sensor-spike",
			Description: "transient implausible over-readings",
			Rules: []Rule{
				{Site: SiteSMU, Kind: SensorSpike, Prob: 0.15, Magnitude: 8},
			},
		},
		{
			Name:        "sensor-drift",
			Description: "estimator calibration drifts toward under-reporting",
			Rules: []Rule{
				{Site: SiteSMU, Kind: SensorDrift, Prob: 0.9, Magnitude: 0.02},
			},
		},
		{
			Name:        "pstate-flaky",
			Description: "P-state transitions fail or complete late",
			Rules: []Rule{
				{Site: SitePState, Kind: PStateFail, Prob: 0.25},
				{Site: SitePState, Kind: PStateDelay, Prob: 0.15, Magnitude: 4},
			},
		},
		{
			Name:        "counter-garbage",
			Description: "PMU readouts corrupted by multiplexing errors",
			Rules: []Rule{
				{Site: SiteCounter, Kind: CounterCorrupt, Prob: 0.35, Magnitude: 50},
			},
		},
		{
			Name:        "kernel-hang",
			Description: "iterations occasionally stall for many periods",
			Rules: []Rule{
				{Site: SiteKernel, Kind: KernelHang, Prob: 0.05, Magnitude: 20},
			},
		},
		{
			Name:        "blackout",
			Description: "every seam degrades at once",
			Rules: []Rule{
				{Site: SiteSMU, Kind: SensorDropout, Prob: 0.10},
				{Site: SiteSMU, Kind: SensorStuck, Prob: 0.10, Magnitude: 9},
				{Site: SiteSMU, Kind: SensorSpike, Prob: 0.05, Magnitude: 8},
				{Site: SiteSMU, Kind: SensorDrift, Prob: 0.5, Magnitude: 0.01},
				{Site: SitePState, Kind: PStateFail, Prob: 0.15},
				{Site: SitePState, Kind: PStateDelay, Prob: 0.10, Magnitude: 4},
				{Site: SiteCounter, Kind: CounterCorrupt, Prob: 0.15, Magnitude: 50},
				{Site: SiteKernel, Kind: KernelHang, Prob: 0.02, Magnitude: 20},
			},
		},
	}
}

// ScenarioByName resolves a built-in scenario.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// ScenarioNames lists the built-in scenario names in catalog order.
func ScenarioNames() []string {
	var out []string
	for _, s := range Scenarios() {
		out = append(out, s.Name)
	}
	return out
}
