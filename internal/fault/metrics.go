package fault

import "acsel/internal/metrics"

// mInjected counts resolved fault events by scenario and seam site.
// Counting happens at resolution time (Injector.At), so the metric is
// the ground truth of what a chaos run actually injected — the
// denominator every robustness claim needs.
var mInjected = metrics.NewCounterVec("acsel_fault_injected_total",
	"Resolved fault events, by fault scenario and hardware seam site.", "scenario", "site")
