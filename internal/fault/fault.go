// Package fault is a deterministic, seed-keyed fault-injection
// framework for the hardware seams the paper's pipeline crosses: SMU
// power sensors (internal/power), ACPI P-state transitions
// (internal/acpi), performance counters (internal/counters), and
// kernel iterations (internal/profiler, internal/rts). The paper's
// cap-keeping claim (Model+FL under the limit in 88% of cases) is
// evaluated on clean hardware; production systems see sensor dropout,
// stuck estimators, failed DVFS transitions, and hung iterations —
// this package makes those conditions reproducible.
//
// A fault plan is (scenario name, seed): every fault decision is
// resolved by hashing the plan identity together with the event's own
// identity (site, key, iteration), exactly like the repo's
// kernels.IterationRNG noise streams. Two runs of the same plan
// therefore inject the identical fault sequence regardless of
// goroutine scheduling or call order — chaos runs replay bit-for-bit.
// A nil *Injector injects nothing, so callers need no enabled checks.
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// SensorDropout kills a power measurement outright: the SMU
	// returns no reading (power.ErrSensorDropout).
	SensorDropout Kind = iota
	// SensorStuck latches the sensor at a stale absolute value
	// (Magnitude watts of package power) regardless of true draw —
	// the insidious under-reporting failure that causes silent cap
	// violations.
	SensorStuck
	// SensorSpike multiplies the reading by Magnitude, producing an
	// implausible sample a sanity gate should quarantine.
	SensorSpike
	// SensorDrift scales the reading by (1 - Magnitude): a slow
	// calibration drift toward under-reporting. Injectors grow the
	// drift with the event iteration (see Rule.Magnitude).
	SensorDrift
	// PStateFail aborts a P-state transition before any state
	// changes (acpi.ErrTransitionFailed); retries may succeed.
	PStateFail
	// PStateDelay lets the transition succeed but stretches its
	// latency by Magnitude× (accounted in transition overhead).
	PStateDelay
	// CounterCorrupt scrambles a performance-counter readout:
	// individual counters are zeroed or scaled by Magnitude.
	CounterCorrupt
	// KernelHang stretches one kernel iteration's runtime by
	// Magnitude× — a stall the watchdog must notice, not a crash.
	KernelHang
	// NetDrop kills a fleet RPC outright: the request never reaches the
	// peer and the caller sees a transport error (retries may succeed).
	NetDrop
	// NetDelay lets the RPC succeed but books Magnitude× the nominal
	// round-trip latency against it — a slow link, not a dead one.
	NetDelay
	// NetCorrupt scrambles the RPC response body so decoding (or
	// validation) fails — a proxy truncation or torn read.
	NetCorrupt
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case SensorDropout:
		return "sensor-dropout"
	case SensorStuck:
		return "sensor-stuck"
	case SensorSpike:
		return "sensor-spike"
	case SensorDrift:
		return "sensor-drift"
	case PStateFail:
		return "pstate-fail"
	case PStateDelay:
		return "pstate-delay"
	case CounterCorrupt:
		return "counter-corrupt"
	case KernelHang:
		return "kernel-hang"
	case NetDrop:
		return "net-drop"
	case NetDelay:
		return "net-delay"
	case NetCorrupt:
		return "net-corrupt"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Site identifies one hardware seam where faults are injected.
type Site int

const (
	// SiteSMU is the power-sensor path (power.SMU and any scalar
	// power reading a limiter consults).
	SiteSMU Site = iota
	// SitePState is the ACPI P-state transition path.
	SitePState
	// SiteCounter is the performance-counter readout path.
	SiteCounter
	// SiteKernel is kernel-iteration execution.
	SiteKernel
	// SiteNet is the fleet coordinator↔agent RPC path (report pulls,
	// cap pushes, heartbeats).
	SiteNet
)

// String names the site.
func (s Site) String() string {
	switch s {
	case SiteSMU:
		return "smu"
	case SitePState:
		return "pstate"
	case SiteCounter:
		return "counter"
	case SiteKernel:
		return "kernel"
	case SiteNet:
		return "net"
	}
	return fmt.Sprintf("Site(%d)", int(s))
}

// Fault is one resolved fault event at a seam.
type Fault struct {
	Kind Kind
	// Magnitude parameterizes the fault; its meaning is per Kind
	// (stuck watts, spike/hang/delay factor, drift fraction,
	// corruption scale). Zero for kinds that need none.
	Magnitude float64
}

// Rule is one line of a scenario: at Site, each event independently
// suffers Kind with probability Prob and parameter Magnitude.
type Rule struct {
	Site Site
	Kind Kind
	Prob float64
	// Magnitude is the fault parameter. For SensorDrift it is the
	// per-iteration drift rate: the resolved fault's magnitude is
	// Magnitude×iter, capped at MaxDriftFrac, so the sensor decays
	// rather than jumps.
	Magnitude float64
}

// MaxDriftFrac bounds cumulative sensor drift: a real estimator that
// lost more than this fraction would fail plausibility checks anyway.
const MaxDriftFrac = 0.35

// Injector resolves fault events for one plan. The zero of every
// decision is the plan identity, so injectors are stateless and safe
// for concurrent use; a nil *Injector resolves no faults.
type Injector struct {
	scenario Scenario
	seed     int64
}

// NewInjector builds the injector for a plan.
func NewInjector(s Scenario, seed int64) *Injector {
	return &Injector{scenario: s, seed: seed}
}

// Scenario returns the injector's scenario.
func (in *Injector) Scenario() Scenario {
	if in == nil {
		return Scenario{Name: "clean"}
	}
	return in.scenario
}

// Seed returns the plan seed.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// String renders the plan as "scenario:seed", the ParsePlan format.
func (in *Injector) String() string {
	if in == nil {
		return "clean:0"
	}
	return fmt.Sprintf("%s:%d", in.scenario.Name, in.seed)
}

// At resolves the faults active for one event, identified by the seam,
// a caller-chosen key (e.g. "kernelID|configID"), and an iteration or
// attempt ordinal. The decision depends only on (plan, site, key,
// iter), never on call order. Multiple rules can fire on one event;
// faults are returned in rule order.
func (in *Injector) At(site Site, key string, iter int) []Fault {
	if in == nil {
		return nil
	}
	var out []Fault
	for ri, r := range in.scenario.Rules {
		if r.Site != site || r.Prob <= 0 {
			continue
		}
		rng := eventRNG(in.scenario.Name, in.seed, site, key, iter, ri)
		if rng.Float64() >= r.Prob {
			continue
		}
		f := Fault{Kind: r.Kind, Magnitude: r.Magnitude}
		if r.Kind == SensorDrift {
			f.Magnitude = r.Magnitude * float64(iter)
			if f.Magnitude > MaxDriftFrac {
				f.Magnitude = MaxDriftFrac
			}
		}
		mInjected.With(in.scenario.Name, site.String()).Inc()
		out = append(out, f)
	}
	return out
}

// Active reports whether any rule targets the site at all (cheap
// pre-check for callers that would otherwise build keys needlessly).
func (in *Injector) Active(site Site) bool {
	if in == nil {
		return false
	}
	for _, r := range in.scenario.Rules {
		if r.Site == site && r.Prob > 0 {
			return true
		}
	}
	return false
}

// eventRNG derives the deterministic decision stream for one
// (plan, event, rule) tuple.
func eventRNG(scenario string, seed int64, site Site, key string, iter, rule int) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(scenario)) // hash.Hash.Write never returns an error
	fmt.Fprintf(h, "|%d|%d|", seed, int(site))
	_, _ = h.Write([]byte(key)) // hash.Hash.Write never returns an error
	fmt.Fprintf(h, "|%d|%d", iter, rule)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// EventKey builds the canonical event key used across seams:
// "id|subID". Both halves are caller-defined (kernel ID and config
// ID, scenario case labels, ...); the helper just fixes the format so
// producers and replayers agree.
func EventKey(id string, sub int) string {
	return id + "|" + strconv.Itoa(sub)
}

// ParsePlan parses a "scenario[:seed]" plan string (seed defaults to
// 1) into an injector, resolving the scenario by name.
func ParsePlan(plan string) (*Injector, error) {
	if plan == "" {
		return nil, fmt.Errorf("fault: empty plan (want scenario[:seed]; a clean run passes no plan at all)")
	}
	name := plan
	seed := int64(1)
	if i := strings.LastIndexByte(plan, ':'); i >= 0 {
		name = plan[:i]
		v, err := strconv.ParseInt(plan[i+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad plan seed %q: %w", plan[i+1:], err)
		}
		seed = v
	}
	if name == "" {
		return nil, fmt.Errorf("fault: plan %q names no scenario", plan)
	}
	sc, ok := ScenarioByName(name)
	if !ok {
		var names []string
		for _, s := range Scenarios() {
			names = append(names, s.Name)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("fault: unknown scenario %q (have %v)", name, names)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return NewInjector(sc, seed), nil
}
