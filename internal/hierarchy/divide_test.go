package hierarchy

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"acsel/internal/fault"
	"acsel/internal/power"
)

// synthView is a synthetic NodeView for divider property tests: a
// hand-built demand figure and step utility curve, no runtime behind
// it.
type synthView struct {
	name     string
	demandW  float64
	demandOK bool
	bps      []float64
	util     []float64
}

func (v synthView) NodeName() string         { return v.name }
func (v synthView) DemandW() (float64, bool) { return v.demandW, v.demandOK }
func (v synthView) Breakpoints() []float64   { return v.bps }
func (v synthView) UtilityAt(c float64) float64 {
	i := sort.SearchFloat64s(v.bps, c)
	if i < len(v.bps) && v.bps[i] == c { //lint:ignore floatcmp step curve includes its breakpoints
		return v.util[i]
	}
	if i == 0 {
		return 0
	}
	return v.util[i-1]
}

// randomViews builds n synthetic nodes with sorted breakpoints and
// non-decreasing utilities from a seeded stream.
func randomViews(rng *rand.Rand, n int) []NodeView {
	views := make([]NodeView, n)
	for i := range views {
		v := synthView{
			name:     string(rune('a'+i)) + "-node",
			demandW:  rng.Float64() * 40,
			demandOK: rng.Intn(4) != 0,
		}
		u := 0.0
		for bp := 5 + rng.Float64()*10; bp < 80 && rng.Intn(8) != 0; bp += 1 + rng.Float64()*12 {
			u += rng.Float64() * 0.3
			v.bps = append(v.bps, bp)
			v.util = append(v.util, u)
		}
		views[i] = v
	}
	return views
}

// TestDivideProperties drives every divider over randomized synthetic
// fleets and checks the two invariants the coordinator depends on:
// caps sum to the budget within 1e-9, and every cap is at least
// MinNodeCapW.
func TestDivideProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		budget := MinNodeCapW*float64(n) + rng.Float64()*100
		views := randomViews(rng, n)
		for _, p := range []Policy{Uniform, DemandProportional, WaterFill} {
			caps, err := Divide(p, views, budget)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, p, err)
			}
			if len(caps) != n {
				t.Fatalf("trial %d %s: %d caps for %d nodes", trial, p, len(caps), n)
			}
			sum := 0.0
			for i, c := range caps {
				if c < MinNodeCapW-1e-9 {
					t.Fatalf("trial %d %s: cap %d = %v below floor %v", trial, p, i, c, MinNodeCapW)
				}
				sum += c
			}
			if math.Abs(sum-budget) > 1e-9 {
				t.Fatalf("trial %d %s: caps sum to %v, budget %v (diff %g)", trial, p, sum, budget, sum-budget)
			}
		}
	}
}

// TestWaterFillOrderInvariant permutes the same fleet and checks the
// water-fill division only depends on node identity, never on arrival
// order — the coordinator sorts members by name, but the divider must
// not require it.
func TestWaterFillOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		budget := MinNodeCapW*float64(n) + rng.Float64()*80
		views := randomViews(rng, n)
		base, err := Divide(WaterFill, views, budget)
		if err != nil {
			t.Fatal(err)
		}
		byName := map[string]float64{}
		for i, v := range views {
			byName[v.NodeName()] = base[i]
		}
		perm := rng.Perm(n)
		shuffled := make([]NodeView, n)
		for i, j := range perm {
			shuffled[i] = views[j]
		}
		caps, err := Divide(WaterFill, shuffled, budget)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range shuffled {
			if caps[i] != byName[v.NodeName()] { //lint:ignore floatcmp identical inputs must produce bitwise-identical caps
				t.Fatalf("trial %d: node %s got %v shuffled vs %v in order (perm %v)",
					trial, v.NodeName(), caps[i], byName[v.NodeName()], perm)
			}
		}
	}
}

// TestDemandSharesZeroTotal is the regression test for the divide-by-
// zero bug: a fleet whose nodes all report 0 W demand used to produce
// NaN caps (0/0) that SetCap rejects. It must fall back to uniform.
func TestDemandSharesZeroTotal(t *testing.T) {
	views := []NodeView{
		synthView{name: "a", demandW: 0, demandOK: true},
		synthView{name: "b", demandW: 0, demandOK: true},
		synthView{name: "c", demandW: 0, demandOK: true},
	}
	budget := 48.0
	caps, err := Divide(DemandProportional, views, budget)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range caps {
		if math.IsNaN(c) {
			t.Fatalf("cap %d is NaN — the zero-demand guard regressed", i)
		}
		if math.Abs(c-budget/3) > 1e-9 {
			t.Fatalf("cap %d = %v, want uniform %v", i, c, budget/3)
		}
	}
}

// TestClusterStepJoinsErrors injects a certain sensor dropout on every
// node's SMU seam and checks Step reports every node's failure, not
// just the first: concurrent multi-node failures used to collapse to
// one arbitrary error.
func TestClusterStepJoinsErrors(t *testing.T) {
	c := twoNodeCluster(t, Uniform, 48)
	inj := fault.NewInjector(fault.Scenario{
		Name:  "certain-dropout",
		Rules: []fault.Rule{{Site: fault.SiteSMU, Kind: fault.SensorDropout, Prob: 1}},
	}, 1)
	for _, n := range c.Nodes {
		// Arm the profiler seam only: with the runtime's own ladder
		// disarmed, a dropout is a hard error from RunKernel.
		n.Runtime.Profiler().Faults = inj
	}
	_, err := c.Step()
	if err == nil {
		t.Fatal("Step succeeded under a certain sensor dropout")
	}
	if !errors.Is(err, power.ErrSensorDropout) {
		t.Fatalf("joined error does not preserve the cause: %v", err)
	}
	for _, name := range []string{"n0", "n1"} {
		if !strings.Contains(err.Error(), "node "+name+":") {
			t.Fatalf("joined error dropped %s's failure:\n%v", name, err)
		}
	}
}
