// Package hierarchy distributes a cluster-level power budget across
// nodes — the system context the paper opens with (§I: "power
// constraints will be enforced by system-wide power policies ... passed
// down through the machine hierarchy to each rack, node, and core") and
// closes with (§II: "Our model is a key ingredient to maximizing
// performance on a multi-node cluster"). Each node runs the adaptive
// runtime; the divider sets per-node caps, either uniformly, in
// proportion to measured demand, or by water-filling over the nodes'
// *predicted* utility curves — the cluster-scale payoff of the
// per-kernel predicted Pareto frontiers.
package hierarchy

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"acsel/internal/kernels"
	"acsel/internal/rts"
	"acsel/internal/stats"
)

// Policy selects the budget divider.
type Policy int

const (
	// Uniform splits the budget equally across nodes.
	Uniform Policy = iota
	// DemandProportional splits in proportion to each node's recent
	// measured power demand (feedback-driven, model-free).
	DemandProportional
	// WaterFill allocates watt by watt to the node with the highest
	// predicted marginal performance gain, using the adapted kernels'
	// cached predictions.
	WaterFill
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case DemandProportional:
		return "demand-proportional"
	case WaterFill:
		return "water-fill"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy resolves a policy by its String name — the flag syntax
// of the cluster tools.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range []Policy{Uniform, DemandProportional, WaterFill} {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("hierarchy: unknown policy %q (want uniform, demand-proportional, or water-fill)", s)
}

// Node is one machine in the cluster: an adaptive runtime executing an
// application's kernels each timestep.
type Node struct {
	Name    string
	Runtime *rts.Runtime
	App     []kernels.Kernel
}

// MinNodeCapW is the smallest per-node budget the divider will assign —
// roughly the machine's idle-plus-one-core floor.
const MinNodeCapW = 10.0

// Cluster owns the nodes and the global budget.
type Cluster struct {
	Nodes   []*Node
	BudgetW float64
	Policy  Policy
}

// ErrNoNodes is returned for an empty cluster.
var ErrNoNodes = errors.New("hierarchy: no nodes")

// NewCluster validates and assembles a cluster.
func NewCluster(nodes []*Node, budgetW float64, p Policy) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	// NaN compares false against every bound, so it would sail past the
	// floor check and later feed NaN caps into every node's SetCap.
	if math.IsNaN(budgetW) || math.IsInf(budgetW, 0) {
		return nil, fmt.Errorf("hierarchy: budget must be a finite wattage, got %v", budgetW)
	}
	if budgetW < MinNodeCapW*float64(len(nodes)) {
		return nil, fmt.Errorf("hierarchy: budget %.1f W below floor %.1f W for %d nodes",
			budgetW, MinNodeCapW*float64(len(nodes)), len(nodes))
	}
	for i, n := range nodes {
		if n.Runtime == nil || len(n.App) == 0 {
			return nil, fmt.Errorf("hierarchy: node %d incomplete", i)
		}
	}
	return &Cluster{Nodes: nodes, BudgetW: budgetW, Policy: p}, nil
}

// NodeView is the read-only window a budget divider needs onto one
// node. Local nodes (View) and the fleet layer's remote reports
// implement it identically, so the same divider code runs in-process
// and across node boundaries.
type NodeView interface {
	// NodeName identifies the node. Dividers use it as an
	// order-independent tie-break, so names must be unique within one
	// division.
	NodeName() string
	// DemandW reports the node's mean measured power over its recent
	// window; ok is false before any measurement history exists.
	DemandW() (demandW float64, ok bool)
	// Breakpoints returns the sorted unique predicted power values at
	// which the node's utility curve can jump.
	Breakpoints() []float64
	// UtilityAt evaluates the node's predicted weighted normalized
	// performance at a given node cap. The curve is a step function
	// that changes value only at Breakpoints.
	UtilityAt(capW float64) float64
}

// localView adapts an in-process *Node to NodeView, with the utility
// curve and breakpoints computed once at construction.
type localView struct {
	n     *Node
	curve func(float64) float64
	bps   []float64
}

// View builds the NodeView of an in-process node.
func View(n *Node) NodeView {
	return &localView{n: n, curve: nodeUtilityCurve(n), bps: nodeBreakpoints(n)}
}

func (v *localView) NodeName() string { return v.n.Name }

func (v *localView) DemandW() (float64, bool) {
	steps := v.n.Runtime.Steps()
	window := len(v.n.App)
	if window == 0 || len(steps) < window {
		return 0, false
	}
	var sum float64
	for _, s := range steps[len(steps)-window:] {
		sum += s.PowerW
	}
	return sum / float64(window), true
}

func (v *localView) Breakpoints() []float64 { return v.bps }

func (v *localView) UtilityAt(capW float64) float64 { return v.curve(capW) }

// Divide computes per-node caps for the views under a policy and
// budget, without applying them anywhere. Every policy returns caps
// that sum to the budget exactly (within float tolerance) with each
// cap at least MinNodeCapW.
func Divide(p Policy, views []NodeView, budgetW float64) ([]float64, error) {
	if len(views) == 0 {
		return nil, ErrNoNodes
	}
	if math.IsNaN(budgetW) || math.IsInf(budgetW, 0) {
		return nil, fmt.Errorf("hierarchy: budget must be a finite wattage, got %v", budgetW)
	}
	if budgetW < MinNodeCapW*float64(len(views)) {
		return nil, fmt.Errorf("hierarchy: budget %.1f W below floor %.1f W for %d nodes",
			budgetW, MinNodeCapW*float64(len(views)), len(views))
	}
	switch p {
	case Uniform:
		return uniformShares(len(views), budgetW), nil
	case DemandProportional:
		return demandShares(views, budgetW), nil
	case WaterFill:
		return waterFillShares(views, budgetW), nil
	}
	return nil, fmt.Errorf("hierarchy: unknown policy %d", int(p))
}

// Rebalance computes per-node caps under the policy and applies them.
// It returns the assigned caps in node order.
func (c *Cluster) Rebalance() ([]float64, error) {
	views := make([]NodeView, len(c.Nodes))
	for i, n := range c.Nodes {
		views[i] = View(n)
	}
	caps, err := Divide(c.Policy, views, c.BudgetW)
	if err != nil {
		return nil, err
	}
	for i, n := range c.Nodes {
		if err := n.Runtime.SetCap(caps[i]); err != nil {
			return nil, err
		}
	}
	return caps, nil
}

func uniformShares(n int, budgetW float64) []float64 {
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = budgetW / float64(n)
	}
	return caps
}

// demandShares divides the budget proportionally to each node's mean
// measured power over its most recent steps, with the floor respected.
// Nodes without history fall back to a uniform share. When the summed
// demand is not positive — a cluster whose nodes all report 0 W, which
// fault plans can produce — proportional division would yield NaN caps
// that SetCap rejects, so the whole division falls back to uniform.
func demandShares(views []NodeView, budgetW float64) []float64 {
	n := len(views)
	demand := make([]float64, n)
	total := 0.0
	for i, v := range views {
		w, ok := v.DemandW()
		if !ok {
			w = budgetW / float64(n)
		}
		demand[i] = w
		total += w
	}
	if !(total > 0) {
		return uniformShares(n, budgetW)
	}
	caps := make([]float64, n)
	spare := budgetW - MinNodeCapW*float64(n)
	for i := range caps {
		caps[i] = MinNodeCapW + spare*demand[i]/total
	}
	return caps
}

// waterFillShares assigns the budget greedily by gain density over
// each node's predicted utility curve — weighted normalized
// performance achievable at a given node cap, from the adapted
// kernels' cached predictions. The curves are step functions that jump
// only where some configuration becomes affordable, so the allocator
// works on those breakpoints: at each round it finds, per node, the
// affordable breakpoint with the best predicted-gain-per-watt, and
// funds the globally best one until nothing affordable improves.
// Density ties break on node name, so the division is invariant to the
// order the views arrive in.
func waterFillShares(views []NodeView, budgetW float64) []float64 {
	n := len(views)
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = MinNodeCapW
	}
	remaining := budgetW - MinNodeCapW*float64(n)
	for {
		bestI, bestBP, bestDensity := -1, 0.0, 0.0
		for i, v := range views {
			base := v.UtilityAt(caps[i])
			for _, bp := range v.Breakpoints() {
				cost := bp - caps[i]
				if cost <= 1e-9 || cost > remaining {
					continue
				}
				gain := v.UtilityAt(bp) - base
				if gain <= 0 {
					continue
				}
				d := gain / cost
				if d > bestDensity ||
					(bestI >= 0 && bestI != i && d == bestDensity && v.NodeName() < views[bestI].NodeName()) { //lint:ignore floatcmp identical inputs yield identical densities; the tie-break keys on exact equality
					bestI, bestBP, bestDensity = i, bp, d
				}
			}
		}
		if bestI < 0 {
			break
		}
		remaining -= bestBP - caps[bestI]
		caps[bestI] = bestBP
	}
	// No affordable breakpoint improves anything: return the residue
	// uniformly (headroom against prediction error).
	for i := range caps {
		caps[i] += remaining / float64(n)
	}
	return caps
}

// nodeBreakpoints returns the sorted unique predicted power values of a
// node's adapted kernels — the caps at which its utility curve can jump.
func nodeBreakpoints(node *Node) []float64 {
	seen := map[float64]bool{}
	var bps []float64
	for _, key := range node.Runtime.AdaptedKernels() {
		preds, ok := node.Runtime.PredictionsFor(key)
		if !ok {
			continue
		}
		for _, p := range preds {
			if !seen[p.PowerW] {
				seen[p.PowerW] = true
				bps = append(bps, p.PowerW)
			}
		}
	}
	sort.Float64s(bps)
	return bps
}

// nodeUtilityCurve estimates weighted normalized performance at a node
// cap: for each adapted kernel, the best predicted performance under
// the cap divided by its best predicted performance overall, weighted
// by the kernel's time share. Un-adapted nodes get a flat curve (no
// information yet).
func nodeUtilityCurve(node *Node) func(float64) float64 {
	type kernelPreds struct {
		weight  float64
		perf    []float64 // predicted perf per config
		power   []float64
		maxPerf float64
	}
	var ks []kernelPreds
	shareOf := map[string]float64{}
	for _, k := range node.App {
		shareOf[k.ID()] = k.TimeShare
	}
	for _, key := range node.Runtime.AdaptedKernels() {
		preds, ok := node.Runtime.PredictionsFor(key)
		if !ok {
			continue
		}
		// A kernel absent from the app mix (or with a vanishing share)
		// falls back to an equal share.
		weight, known := shareOf[key]
		if !known || stats.AlmostZero(weight) {
			weight = 1.0 / float64(len(node.App))
		}
		kp := kernelPreds{weight: weight}
		for _, p := range preds {
			kp.perf = append(kp.perf, p.Perf)
			kp.power = append(kp.power, p.PowerW)
			if p.Perf > kp.maxPerf {
				kp.maxPerf = p.Perf
			}
		}
		ks = append(ks, kp)
	}
	if len(ks) == 0 {
		return func(float64) float64 { return 0 }
	}
	return func(capW float64) float64 {
		total := 0.0
		for _, kp := range ks {
			best := 0.0
			for i := range kp.perf {
				if kp.power[i] <= capW && kp.perf[i] > best {
					best = kp.perf[i]
				}
			}
			if kp.maxPerf > 0 {
				total += kp.weight * best / kp.maxPerf
			}
		}
		return total
	}
}

// StepResult summarizes one node's timestep.
type StepResult struct {
	Node       string
	CapW       float64
	TimeSec    float64
	EnergyJ    float64
	Violations int
	Kernels    int
}

// Step runs one application timestep on every node concurrently and
// returns per-node summaries in node order.
func (c *Cluster) Step() ([]StepResult, error) {
	results := make([]StepResult, len(c.Nodes))
	errs := make([]error, len(c.Nodes))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, node := range c.Nodes {
		// Acquire the semaphore slot before spawning (matching
		// core.Characterize): at most GOMAXPROCS goroutines exist at
		// once, instead of one per node all queued on the channel.
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, node *Node) {
			defer wg.Done()
			defer func() { <-sem }()
			r := StepResult{Node: node.Name, CapW: node.Runtime.Cap(), Kernels: len(node.App)}
			for _, k := range node.App {
				s, err := node.Runtime.RunKernel(k)
				if err != nil {
					errs[i] = fmt.Errorf("node %s: %w", node.Name, err)
					return
				}
				r.TimeSec += s.TimeSec * k.TimeShare
				r.EnergyJ += s.EnergyJ * k.TimeShare
				if !s.UnderCap {
					r.Violations++
				}
			}
			results[i] = r
		}(i, node)
	}
	wg.Wait()
	// Nodes fail concurrently; reporting only the first non-nil error
	// would silently drop every other node's failure. Join preserves
	// them all (nil entries are skipped).
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}

// TotalAssignedW sums the nodes' current caps (must not exceed the
// budget after Rebalance).
func (c *Cluster) TotalAssignedW() float64 {
	total := 0.0
	for _, n := range c.Nodes {
		total += n.Runtime.Cap()
	}
	return total
}
