package hierarchy

import (
	"math"
	"sync"
	"testing"

	"acsel/internal/core"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
	"acsel/internal/rts"
)

var (
	setupOnce sync.Once
	setupErr  error
	gModel    *core.Model
	gApps     map[string][]kernels.Kernel
)

// sharedModel trains one model (on SMC+LU) and prepares two node apps:
// a GPU-friendly one (CoMD) and a mixed one (LULESH Small).
func sharedModel(t *testing.T) (*core.Model, map[string][]kernels.Kernel) {
	t.Helper()
	setupOnce.Do(func() {
		var training []kernels.Kernel
		gApps = map[string][]kernels.Kernel{}
		for _, c := range kernels.Combos() {
			switch {
			case c.Benchmark == "CoMD" && c.Input == "Large":
				gApps["comd"] = c.Kernels
			case c.Benchmark == "LULESH" && c.Input == "Small":
				gApps["lulesh"] = c.Kernels
			case c.Benchmark == "SMC" || c.Benchmark == "LU":
				training = append(training, c.Kernels...)
			}
		}
		p := profiler.New()
		opts := core.DefaultTrainOptions()
		opts.Iterations = 1
		opts.K = 4 // SMC+LU alone: 11 profiles
		profs, err := core.Characterize(p, training, opts)
		if err != nil {
			setupErr = err
			return
		}
		gModel, setupErr = core.Train(p.Space, profs, opts)
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return gModel, gApps
}

func newNode(t *testing.T, name string, app []kernels.Kernel, capW float64) *Node {
	t.Helper()
	m, _ := sharedModel(t)
	rt, err := rts.New(m, rts.Options{CapW: capW})
	if err != nil {
		t.Fatal(err)
	}
	return &Node{Name: name, Runtime: rt, App: app}
}

func twoNodeCluster(t *testing.T, p Policy, budget float64) *Cluster {
	t.Helper()
	_, apps := sharedModel(t)
	c, err := NewCluster([]*Node{
		newNode(t, "n0", apps["comd"], budget/2),
		newNode(t, "n1", apps["lulesh"], budget/2),
	}, budget, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPolicyString(t *testing.T) {
	if Uniform.String() != "uniform" || DemandProportional.String() != "demand-proportional" || WaterFill.String() != "water-fill" {
		t.Fatal("policy strings")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy renders empty")
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, 100, Uniform); err == nil {
		t.Error("empty cluster accepted")
	}
	_, apps := sharedModel(t)
	n := newNode(t, "x", apps["comd"], 20)
	if _, err := NewCluster([]*Node{n, n, n, n, n, n, n, n, n, n, n}, 50, Uniform); err == nil {
		t.Error("budget below floor accepted")
	}
	if _, err := NewCluster([]*Node{{Name: "bad"}}, 100, Uniform); err == nil {
		t.Error("incomplete node accepted")
	}
	// A NaN budget compares false against the floor check and would
	// otherwise propagate NaN caps to every node.
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := NewCluster([]*Node{n}, w, Uniform); err == nil {
			t.Errorf("non-finite budget %v accepted", w)
		}
	}
}

func TestUniformRebalance(t *testing.T) {
	c := twoNodeCluster(t, Uniform, 60)
	caps, err := c.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if caps[0] != 30 || caps[1] != 30 {
		t.Errorf("caps = %v", caps)
	}
	if math.Abs(c.TotalAssignedW()-60) > 1e-9 {
		t.Errorf("assigned = %v", c.TotalAssignedW())
	}
}

func TestStepRunsAllNodes(t *testing.T) {
	c := twoNodeCluster(t, Uniform, 60)
	if _, err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	results, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.TimeSec <= 0 || r.EnergyJ <= 0 || r.Kernels == 0 {
			t.Errorf("result %+v", r)
		}
	}
}

func TestDemandProportionalRespectsBudget(t *testing.T) {
	c := twoNodeCluster(t, DemandProportional, 56)
	// Warm up so nodes have measurement history.
	for i := 0; i < 3; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	caps, err := c.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, cp := range caps {
		if cp < MinNodeCapW-1e-9 {
			t.Errorf("cap %v below floor", cp)
		}
		sum += cp
	}
	if sum > c.BudgetW+1e-6 {
		t.Errorf("caps %v exceed budget %v", caps, c.BudgetW)
	}
}

func TestWaterFillFavorsHungrierNode(t *testing.T) {
	// After adaptation, the CoMD node (GPU-heavy, high power demand for
	// its performance) should receive a different share than the
	// LULESH Small node; total must respect the budget and floor.
	c := twoNodeCluster(t, WaterFill, 56)
	for i := 0; i < 3; i++ { // adapt all kernels (2 sampling + 1 pinned)
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	caps, err := c.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, cp := range caps {
		if cp < MinNodeCapW-1e-9 {
			t.Errorf("cap %v below floor", cp)
		}
		sum += cp
	}
	if math.Abs(sum-c.BudgetW) > 1e-6 {
		t.Errorf("water-fill total %v != budget %v", sum, c.BudgetW)
	}
	if math.Abs(caps[0]-caps[1]) < 0.5 {
		t.Errorf("water-fill did not differentiate nodes: %v", caps)
	}
	t.Logf("water-fill caps: comd=%.1f lulesh=%.1f", caps[0], caps[1])
}

func TestWaterFillBeatsUniformOnPredictedUtility(t *testing.T) {
	// The point of the policy: at equal budget, water-filling should
	// achieve at least the uniform division's total predicted utility.
	cu := twoNodeCluster(t, Uniform, 56)
	cw := twoNodeCluster(t, WaterFill, 56)
	for i := 0; i < 3; i++ {
		if _, err := cu.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := cw.Step(); err != nil {
			t.Fatal(err)
		}
	}
	capsU, err := cu.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	capsW, err := cw.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	utility := func(c *Cluster, caps []float64) float64 {
		total := 0.0
		for i, n := range c.Nodes {
			total += nodeUtilityCurve(n)(caps[i])
		}
		return total
	}
	// Evaluate both divisions on the water-fill cluster's curves (same
	// model, same apps, so curves are comparable).
	u := utility(cw, capsU)
	w := utility(cw, capsW)
	if w < u-1e-9 {
		t.Errorf("water-fill utility %v below uniform %v", w, u)
	}
	t.Logf("predicted utility: uniform %.3f, water-fill %.3f", u, w)
}

func TestRebalanceAfterBudgetChange(t *testing.T) {
	c := twoNodeCluster(t, Uniform, 60)
	if _, err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	c.BudgetW = 40
	caps, err := c.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if caps[0] != 20 || caps[1] != 20 {
		t.Errorf("caps after shrink = %v", caps)
	}
}

func TestStepDeterministic(t *testing.T) {
	run := func() float64 {
		c := twoNodeCluster(t, Uniform, 60)
		if _, err := c.Rebalance(); err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for i := 0; i < 2; i++ {
			rs, err := c.Step()
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rs {
				total += r.EnergyJ
			}
		}
		return total
	}
	if run() != run() {
		t.Error("cluster stepping not deterministic")
	}
}

func BenchmarkClusterStep(b *testing.B) {
	var training []kernels.Kernel
	apps := map[string][]kernels.Kernel{}
	for _, c := range kernels.Combos() {
		switch {
		case c.Benchmark == "CoMD" && c.Input == "Large":
			apps["comd"] = c.Kernels
		case c.Benchmark == "LULESH" && c.Input == "Small":
			apps["lulesh"] = c.Kernels
		case c.Benchmark == "SMC" || c.Benchmark == "LU":
			training = append(training, c.Kernels...)
		}
	}
	p := profiler.New()
	opts := core.DefaultTrainOptions()
	opts.Iterations = 1
	opts.K = 4
	profs, err := core.Characterize(p, training, opts)
	if err != nil {
		b.Fatal(err)
	}
	model, err := core.Train(p.Space, profs, opts)
	if err != nil {
		b.Fatal(err)
	}
	mk := func(name string, app []kernels.Kernel) *Node {
		rt, err := rts.New(model, rts.Options{CapW: 28})
		if err != nil {
			b.Fatal(err)
		}
		return &Node{Name: name, Runtime: rt, App: app}
	}
	c, err := NewCluster([]*Node{mk("a", apps["comd"]), mk("b", apps["lulesh"])}, 56, WaterFill)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Step(); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Rebalance(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFourNodeClusterScales(t *testing.T) {
	_, apps := sharedModel(t)
	nodes := []*Node{
		newNode(t, "n0", apps["comd"], 25),
		newNode(t, "n1", apps["lulesh"], 25),
		newNode(t, "n2", apps["comd"], 25),
		newNode(t, "n3", apps["lulesh"], 25),
	}
	c, err := NewCluster(nodes, 100, WaterFill)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	caps, err := c.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, cp := range caps {
		if cp < MinNodeCapW-1e-9 {
			t.Errorf("cap %v below floor", cp)
		}
		sum += cp
	}
	if math.Abs(sum-100) > 1e-6 {
		t.Errorf("caps sum to %v, budget 100", sum)
	}
	// Identical apps should get similar caps (same utility curves;
	// greedy allocation may leave the last funded breakpoint asymmetric
	// when the budget runs out mid-round, so allow a couple of watts).
	if math.Abs(caps[0]-caps[2]) > 2.5 || math.Abs(caps[1]-caps[3]) > 2.5 {
		t.Errorf("identical nodes diverged: %v", caps)
	}
	results, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
}
