module acsel

go 1.22
