// Package acsel_test holds the paper-level benchmark harness: one
// testing.B benchmark per table and figure of the evaluation (§V), plus
// ablation benchmarks for the design choices called out in DESIGN.md.
// Quality metrics (cap compliance, oracle-relative performance) are
// attached to the benchmark results via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates both the timing and the
// headline numbers; the full row/series text comes from
// `go run ./cmd/acsel-bench`.
package acsel_test

import (
	"runtime"
	"sync"
	"testing"

	"acsel/internal/apu"
	"acsel/internal/cluster"
	"acsel/internal/core"
	"acsel/internal/eval"
	"acsel/internal/hierarchy"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
	"acsel/internal/rapl"
	"acsel/internal/rts"
	"acsel/internal/sched"
	"acsel/internal/thermal"
	"acsel/internal/tree"
)

// sharedEval caches one full cross-validated evaluation for the
// benchmarks that only post-process it.
var (
	evalOnce sync.Once
	evalErr  error
	gEval    *eval.Evaluation
	gSpace   *apu.Space
)

func sharedEval(b *testing.B) (*eval.Evaluation, *apu.Space) {
	b.Helper()
	evalOnce.Do(func() {
		h := eval.NewHarness()
		h.Opts.Iterations = 3
		gEval, evalErr = h.Run()
		gSpace = h.Profiler.Space
	})
	if evalErr != nil {
		b.Fatal(evalErr)
	}
	return gEval, gSpace
}

func allSuiteKernels() []kernels.Kernel {
	var ks []kernels.Kernel
	for _, c := range kernels.Combos() {
		ks = append(ks, c.Kernels...)
	}
	return ks
}

// BenchmarkTable1Fig2_Frontier regenerates Table I / Figure 2: profile
// the CalcFBHourglass kernel at all 42 configurations and extract its
// power–performance Pareto frontier.
func BenchmarkTable1Fig2_Frontier(b *testing.B) {
	k := kernels.Instantiate("LULESH", kernels.Suite()[0].Kernels[0], "Large")
	opts := core.DefaultTrainOptions()
	opts.Iterations = 3
	b.ReportAllocs()
	var frontierLen int
	for i := 0; i < b.N; i++ {
		p := profiler.New()
		profs, err := core.Characterize(p, []kernels.Kernel{k}, opts)
		if err != nil {
			b.Fatal(err)
		}
		frontierLen = profs[0].Frontier.Len()
	}
	b.ReportMetric(float64(frontierLen), "frontier_pts")
}

// BenchmarkTable2_SampleConfigs measures the online sampling cost: the
// two sample-configuration iterations a new kernel pays (Table II).
func BenchmarkTable2_SampleConfigs(b *testing.B) {
	p := profiler.New()
	k := kernels.Instantiate("CoMD", kernels.Suite()[1].Kernels[0], "Large")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunConfig(k, apu.SampleConfigCPU(), 0); err != nil {
			b.Fatal(err)
		}
		if _, err := p.RunConfig(k, apu.SampleConfigGPU(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1_OfflinePipeline runs the complete offline stage of the
// Figure 1 flowchart: characterize the full 65-combination suite and
// train clusters, regressions, and the classifier.
func BenchmarkFig1_OfflinePipeline(b *testing.B) {
	opts := core.DefaultTrainOptions()
	opts.Iterations = 1
	ks := allSuiteKernels()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := profiler.New()
		profs, err := core.Characterize(p, ks, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Train(p.Space, profs, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3_ClassificationTree regenerates Figure 3: train the
// cluster classification tree of one cross-validation fold and report
// its depth (classification is O(depth), §IV-C).
func BenchmarkFig3_ClassificationTree(b *testing.B) {
	ev, _ := sharedEval(b)
	m := ev.FoldModels["LULESH"]
	kp := ev.Profiles[0]
	feats := core.ClassifierFeatures(kp.CPUSample, kp.GPUSample)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Tree.Classify(feats); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Tree.Depth()), "tree_depth")
}

// BenchmarkTable3Fig4_MethodComparison regenerates Table III / Figure 4:
// the cross-validated comparison of all methods against the oracle.
// Headline metrics are attached to the result.
func BenchmarkTable3Fig4_MethodComparison(b *testing.B) {
	var ev *eval.Evaluation
	for i := 0; i < b.N; i++ {
		h := eval.NewHarness()
		h.Opts.Iterations = 3
		var err error
		ev, err = h.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	mfl := ev.Overall[sched.MethodModelFL]
	b.ReportMetric(mfl.PctUnder*100, "modelFL_pct_under")
	b.ReportMetric(mfl.UnderPerfRatio*100, "modelFL_under_perf")
	b.ReportMetric(ev.Overall[sched.MethodGPUFL].PctUnder*100, "gpuFL_pct_under")
	b.ReportMetric(ev.Overall[sched.MethodCPUFL].UnderPerfRatio*100, "cpuFL_under_perf")
}

// perComboBench reports one per-benchmark figure's aggregation cost and
// a representative metric.
func perComboBench(b *testing.B, metric string, get func(*eval.Evaluation) float64) {
	ev, _ := sharedEval(b)
	b.ResetTimer()
	var v float64
	for i := 0; i < b.N; i++ {
		v = get(ev)
	}
	b.ReportMetric(v, metric)
}

// BenchmarkFig5_UnderLimitPerf regenerates Figure 5 (under-limit
// performance by benchmark) and reports Model+FL's worst-case combo.
func BenchmarkFig5_UnderLimitPerf(b *testing.B) {
	perComboBench(b, "modelFL_worst_under_perf", func(ev *eval.Evaluation) float64 {
		worst := 1.0
		for _, c := range ev.PerCombo {
			a := c.PerMethod[sched.MethodModelFL]
			if a.HasUnder && a.UnderPerfRatio < worst {
				worst = a.UnderPerfRatio
			}
		}
		_ = ev.ReportFig5()
		return worst * 100
	})
}

// BenchmarkFig6_PercentUnderLimit regenerates Figure 6 and reports how
// many combos Model+FL leads or ties on cap compliance.
func BenchmarkFig6_PercentUnderLimit(b *testing.B) {
	perComboBench(b, "modelFL_leads_combos", func(ev *eval.Evaluation) float64 {
		leads := 0
		for _, c := range ev.PerCombo {
			best := true
			mfl := c.PerMethod[sched.MethodModelFL].PctUnder
			for _, m := range sched.Methods() {
				if c.PerMethod[m].PctUnder > mfl+1e-9 {
					best = false
				}
			}
			if best {
				leads++
			}
		}
		_ = ev.ReportFig6()
		return float64(leads)
	})
}

// BenchmarkFig7_LUSmallFrontier regenerates Figure 7: the LU Small
// frontier with its CPU→GPU performance cliff. The reported metric is
// the cliff ratio (first GPU frontier point vs last CPU point).
func BenchmarkFig7_LUSmallFrontier(b *testing.B) {
	ev, space := sharedEval(b)
	b.ResetTimer()
	var cliff float64
	for i := 0; i < b.N; i++ {
		kp, ok := ev.ProfileByID(eval.Fig7KernelID)
		if !ok {
			b.Fatal("missing LU Small profile")
		}
		pts := kp.Frontier.Points()
		var lastCPU, firstGPU float64
		for _, pt := range pts {
			if space.Configs[pt.ID].Device == apu.CPUDevice {
				lastCPU = pt.Perf
			} else if firstGPU == 0 {
				firstGPU = pt.Perf
			}
		}
		if lastCPU > 0 && firstGPU > 0 {
			cliff = firstGPU / lastCPU
		}
	}
	b.ReportMetric(cliff, "gpu_cpu_cliff_ratio")
}

// BenchmarkFig8_OverLimitPower regenerates Figure 8 and reports GPU+FL's
// worst over-limit power overshoot across combos.
func BenchmarkFig8_OverLimitPower(b *testing.B) {
	perComboBench(b, "gpuFL_worst_over_power", func(ev *eval.Evaluation) float64 {
		worst := 0.0
		for _, c := range ev.PerCombo {
			a := c.PerMethod[sched.MethodGPUFL]
			if a.HasOver && a.OverPowerRatio > worst {
				worst = a.OverPowerRatio
			}
		}
		_ = ev.ReportFig8()
		return worst * 100
	})
}

// BenchmarkFig9_OverLimitPerf regenerates Figure 9 and reports GPU+FL's
// maximum over-limit performance vs the oracle (the paper clips this at
// 9297% for LU Large).
func BenchmarkFig9_OverLimitPerf(b *testing.B) {
	perComboBench(b, "gpuFL_max_over_perf", func(ev *eval.Evaluation) float64 {
		worst := 0.0
		for _, c := range ev.PerCombo {
			a := c.PerMethod[sched.MethodGPUFL]
			if a.HasOver && a.OverPerfRatio > worst {
				worst = a.OverPerfRatio
			}
		}
		_ = ev.ReportFig9()
		return worst * 100
	})
}

// BenchmarkOnlineSelectionLatency validates the paper's §II claim that
// each configuration selection takes well under one millisecond.
func BenchmarkOnlineSelectionLatency(b *testing.B) {
	ev, _ := sharedEval(b)
	m := ev.FoldModels["LU"]
	kp, _ := ev.ProfileByID(eval.Fig7KernelID)
	sr := core.SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SelectUnderCap(sr, 22); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (design choices from DESIGN.md §5) ---

// BenchmarkAblationClusterCount sweeps k (the paper settled on 5) and
// reports the silhouette-optimal k on the real dissimilarity matrix.
func BenchmarkAblationClusterCount(b *testing.B) {
	ev, _ := sharedEval(b)
	dis := core.DissimilarityMatrix(ev.Profiles)
	b.ResetTimer()
	var bestK int
	for i := 0; i < b.N; i++ {
		var err error
		bestK, _, err = cluster.BestK(dis, 2, 9, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(bestK), "best_k")
}

// BenchmarkAblationAgglomerative compares PAM with average-linkage
// agglomerative clustering on the same dissimilarities, reporting the
// silhouette gap (positive = PAM better).
func BenchmarkAblationAgglomerative(b *testing.B) {
	ev, _ := sharedEval(b)
	dis := core.DissimilarityMatrix(ev.Profiles)
	b.ResetTimer()
	var gap float64
	for i := 0; i < b.N; i++ {
		pam, err := cluster.PAM(dis, 5, 1)
		if err != nil {
			b.Fatal(err)
		}
		agg, err := cluster.Agglomerative(dis, 5)
		if err != nil {
			b.Fatal(err)
		}
		gap = cluster.Silhouette(dis, pam.Assignments) - cluster.Silhouette(dis, agg.Assignments)
	}
	b.ReportMetric(gap, "pam_minus_agglo_silhouette")
}

// BenchmarkAblationLogTargets evaluates the variance-stabilizing
// transform extension (§VI): full evaluation with log-transformed power
// targets, reporting Model+FL compliance for comparison with the base
// run.
func BenchmarkAblationLogTargets(b *testing.B) {
	var ev *eval.Evaluation
	for i := 0; i < b.N; i++ {
		h := eval.NewHarness()
		h.Opts.Iterations = 1
		h.Opts.LogTargets = true
		var err error
		ev, err = h.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ev.Overall[sched.MethodModelFL].PctUnder*100, "modelFL_pct_under_log")
}

// BenchmarkAblationVarianceAware evaluates the variance-aware selection
// extension (§VI): predicted power + z·σ must fit the cap. Reports the
// compliance gain of the Model (no FL) policy at z=1.
func BenchmarkAblationVarianceAware(b *testing.B) {
	ev, space := sharedEval(b)
	var gain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var baseMeets, vaMeets, total int
		for _, kp := range ev.Profiles {
			m := ev.FoldModels[kp.Benchmark]
			sr := core.SampleRuns{CPU: kp.CPUSample, GPU: kp.GPUSample}
			truth := sched.ProfileTruth{Profile: kp}
			for _, pt := range kp.Frontier.Points() {
				capW := pt.Power
				base, err := m.SelectUnderCap(sr, capW)
				if err != nil {
					b.Fatal(err)
				}
				va, err := m.SelectUnderCapVarAware(sr, capW, 1)
				if err != nil {
					b.Fatal(err)
				}
				if truth.PowerAt(base.ConfigID) <= capW+1e-9 {
					baseMeets++
				}
				if truth.PowerAt(va.ConfigID) <= capW+1e-9 {
					vaMeets++
				}
				total++
			}
		}
		gain = float64(vaMeets-baseMeets) / float64(total) * 100
	}
	_ = space
	b.ReportMetric(gain, "va_compliance_gain_pct")
}

// BenchmarkAblationBoostStates measures the opportunistic-overclocking
// extension (§VI): how much extra unconstrained CPU performance the
// boost P-states buy on a compute-bound kernel when thermal headroom
// allows.
func BenchmarkAblationBoostStates(b *testing.B) {
	m := apu.DefaultMachine()
	k := kernels.Instantiate("CoMD", kernels.Suite()[1].Kernels[0], "Small")
	base := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: apu.MaxCPUFreq(), Threads: 4, GPUFreqGHz: apu.MinGPUFreq()}
	boost := base
	boost.CPUFreqGHz = apu.BoostPStates[len(apu.BoostPStates)-1].FreqGHz
	var speedup float64
	for i := 0; i < b.N; i++ {
		eb, err := m.Run(k.Workload, base)
		if err != nil {
			b.Fatal(err)
		}
		ebo, err := m.Run(k.Workload, boost)
		if err != nil {
			b.Fatal(err)
		}
		if !m.ThermalHeadroom(ebo.TotalPowerW(), 100) {
			speedup = 1 // boost gated off
		} else {
			speedup = eb.TimeSec / ebo.TimeSec
		}
	}
	b.ReportMetric(speedup, "boost_speedup")
}

// BenchmarkDissimilarityMatrix measures the pairwise frontier
// comparison over the full 65-profile suite (65×64/2 Kendall taus),
// sequentially and on the bounded worker pool. Both paths produce a
// bit-identical matrix; the gap is pure parallel speedup.
func BenchmarkDissimilarityMatrix(b *testing.B) {
	ev, _ := sharedEval(b)
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.DissimilarityMatrixWorkers(ev.Profiles, bench.workers)
			}
		})
	}
}

// BenchmarkEvalFolds measures the cross-validation fold pipeline alone —
// characterization happens once outside the timer — comparing the
// sequential fold loop against the bounded fold pool. Both emit a
// deeply equal Evaluation; the acceptance bar is parallel ≥2× at
// GOMAXPROCS ≥ 4 (on a single-CPU host the two are expected to tie).
func BenchmarkEvalFolds(b *testing.B) {
	h := eval.NewHarness()
	h.Opts.Iterations = 3
	var ks []kernels.Kernel
	for _, c := range kernels.Combos() {
		ks = append(ks, c.Kernels...)
	}
	profs, err := core.Characterize(h.Profiler, ks, h.Opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bench.name, func(b *testing.B) {
			h.Workers = bench.workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := h.RunOnProfiles(profs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTreeTraining measures classifier induction alone on the real
// feature set.
func BenchmarkTreeTraining(b *testing.B) {
	ev, _ := sharedEval(b)
	var X [][]float64
	var y []int
	m := ev.FoldModels["LU"]
	for _, kp := range ev.Profiles {
		if kp.Benchmark == "LU" {
			continue
		}
		X = append(X, core.ClassifierFeatures(kp.CPUSample, kp.GPUSample))
		y = append(y, m.Assignments[kp.KernelID])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Train(X, y, tree.Options{MaxDepth: 5, MinLeaf: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivityGPUPower perturbs the machine's GPU dynamic-power
// coefficient ±25% and re-runs the full evaluation, reporting Model+FL
// compliance under each calibration. The paper's conclusions should not
// hinge on exact power-model constants.
func BenchmarkSensitivityGPUPower(b *testing.B) {
	run := func(scale float64) float64 {
		h := eval.NewHarness()
		h.Opts.Iterations = 1
		h.Profiler.Machine.GPUDynWPerV2GHz *= scale
		ev, err := h.Run()
		if err != nil {
			b.Fatal(err)
		}
		return ev.Overall[sched.MethodModelFL].PctUnder
	}
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		lo = run(0.75)
		hi = run(1.25)
	}
	b.ReportMetric(lo*100, "modelFL_pct_under_gpu-25pct")
	b.ReportMetric(hi*100, "modelFL_pct_under_gpu+25pct")
}

// BenchmarkSensitivityMemoryBW perturbs peak DRAM bandwidth ±25%,
// shifting every kernel's roofline position, and reports Model+FL
// compliance.
func BenchmarkSensitivityMemoryBW(b *testing.B) {
	run := func(scale float64) float64 {
		h := eval.NewHarness()
		h.Opts.Iterations = 1
		h.Profiler.Machine.PeakBWGBs *= scale
		h.Profiler.Machine.GPUBWGBs *= scale
		ev, err := h.Run()
		if err != nil {
			b.Fatal(err)
		}
		return ev.Overall[sched.MethodModelFL].PctUnder
	}
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		lo = run(0.75)
		hi = run(1.25)
	}
	b.ReportMetric(lo*100, "modelFL_pct_under_bw-25pct")
	b.ReportMetric(hi*100, "modelFL_pct_under_bw+25pct")
}

// BenchmarkRAPLConvergence measures how many controller iterations the
// running-average power limiter needs to settle on a compliant
// configuration — the temporal behaviour behind the FL baselines.
func BenchmarkRAPLConvergence(b *testing.B) {
	m := apu.DefaultMachine()
	k := kernels.Instantiate("CoMD", kernels.Suite()[1].Kernels[0], "Large")
	start := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: apu.MaxCPUFreq(), Threads: 4, GPUFreqGHz: apu.MinGPUFreq()}
	var steps int
	for i := 0; i < b.N; i++ {
		c, err := rapl.NewController(20, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		trace, _, err := rapl.Converge(m, k.Workload, start, c, rapl.PolicyCPU, 60)
		if err != nil {
			b.Fatal(err)
		}
		steps = len(trace)
	}
	b.ReportMetric(float64(steps), "iterations_to_settle")
}

// BenchmarkAblationThermalBoost runs the full opportunistic-boost
// simulation with the RC thermal model and governor (§VI), reporting
// the fraction of iterations that actually boosted on a hot kernel.
func BenchmarkAblationThermalBoost(b *testing.B) {
	m := apu.DefaultMachine()
	k := kernels.Instantiate("CoMD", kernels.Suite()[1].Kernels[0], "Large")
	base := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: apu.MaxCPUFreq(), Threads: 4, GPUFreqGHz: apu.MinGPUFreq()}
	var frac float64
	for i := 0; i < b.N; i++ {
		var err error
		_, frac, err = thermal.SimulateBoost(m, k.Workload, base, apu.BoostPStates[1].FreqGHz, 60)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(frac*100, "boosted_iterations_pct")
}

// BenchmarkAdaptiveRuntimeApp drives a whole proxy application through
// the adaptive runtime (sampling → classify → pin → FL) and reports the
// end-to-end violation rate of pinned iterations.
func BenchmarkAdaptiveRuntimeApp(b *testing.B) {
	var training, app []kernels.Kernel
	for _, c := range kernels.Combos() {
		if c.Benchmark == "LULESH" {
			if c.Input == "Large" {
				app = c.Kernels
			}
			continue
		}
		training = append(training, c.Kernels...)
	}
	p := profiler.New()
	opts := core.DefaultTrainOptions()
	opts.Iterations = 1
	profs, err := core.Characterize(p, training, opts)
	if err != nil {
		b.Fatal(err)
	}
	model, err := core.Train(p.Space, profs, opts)
	if err != nil {
		b.Fatal(err)
	}
	var violRate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runtime, err := rts.New(model, rts.Options{CapW: 24, FL: true})
		if err != nil {
			b.Fatal(err)
		}
		for step := 0; step < 6; step++ {
			for _, k := range app {
				if _, err := runtime.RunKernel(k); err != nil {
					b.Fatal(err)
				}
			}
		}
		var pinned, viol int
		for _, s := range runtime.Steps() {
			if s.Phase == rts.PhasePinned {
				pinned++
				if !s.UnderCap {
					viol++
				}
			}
		}
		violRate = float64(viol) / float64(pinned)
	}
	b.ReportMetric(violRate*100, "pinned_violation_pct")
}

// BenchmarkHybridAssumption checks §III-A's premise quantitatively: the
// best hybrid CPU+GPU split's performance-per-watt relative to the best
// single device, averaged over the suite (values ≤ 100 support the
// paper's decision to exclude hybrid execution).
func BenchmarkHybridAssumption(b *testing.B) {
	m := apu.DefaultMachine()
	cpu := apu.Config{Device: apu.CPUDevice, CPUFreqGHz: apu.MaxCPUFreq(), Threads: 4, GPUFreqGHz: apu.MinGPUFreq()}
	gpu := apu.Config{Device: apu.GPUDevice, CPUFreqGHz: apu.MaxCPUFreq(), Threads: 1, GPUFreqGHz: apu.MaxGPUFreq()}
	var ratio float64
	for i := 0; i < b.N; i++ {
		var sum float64
		var count int
		for _, combo := range kernels.Combos() {
			for _, k := range combo.Kernels {
				ec, err := m.Run(k.Workload, cpu)
				if err != nil {
					b.Fatal(err)
				}
				eg, err := m.Run(k.Workload, gpu)
				if err != nil {
					b.Fatal(err)
				}
				best := ec.Perf() / ec.TotalPowerW()
				if e := eg.Perf() / eg.TotalPowerW(); e > best {
					best = e
				}
				h, err := m.BestHybridSplit(k.Workload, cpu, gpu, 9)
				if err != nil {
					b.Fatal(err)
				}
				sum += (h.Perf() / h.TotalPowerW()) / best
				count++
			}
		}
		ratio = sum / float64(count)
	}
	b.ReportMetric(ratio*100, "hybrid_perfperwatt_vs_best_pct")
}

// BenchmarkHierarchyWaterFill measures the cluster-level budget divider
// and reports the predicted-utility advantage of water-filling over a
// uniform split on a two-node cluster.
func BenchmarkHierarchyWaterFill(b *testing.B) {
	var training []kernels.Kernel
	apps := map[string][]kernels.Kernel{}
	for _, c := range kernels.Combos() {
		switch {
		case c.Benchmark == "CoMD" && c.Input == "Large":
			apps["comd"] = c.Kernels
		case c.Benchmark == "LULESH" && c.Input == "Small":
			apps["lulesh"] = c.Kernels
		case c.Benchmark == "SMC" || c.Benchmark == "LU":
			training = append(training, c.Kernels...)
		}
	}
	p := profiler.New()
	opts := core.DefaultTrainOptions()
	opts.Iterations = 1
	opts.K = 4
	profs, err := core.Characterize(p, training, opts)
	if err != nil {
		b.Fatal(err)
	}
	model, err := core.Train(p.Space, profs, opts)
	if err != nil {
		b.Fatal(err)
	}
	var gap float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mk := func(name string, app []kernels.Kernel) *hierarchy.Node {
			rt, err := rts.New(model, rts.Options{CapW: 28})
			if err != nil {
				b.Fatal(err)
			}
			return &hierarchy.Node{Name: name, Runtime: rt, App: app}
		}
		c, err := hierarchy.NewCluster(
			[]*hierarchy.Node{mk("a", apps["comd"]), mk("b", apps["lulesh"])}, 56, hierarchy.WaterFill)
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < 3; s++ {
			if _, err := c.Step(); err != nil {
				b.Fatal(err)
			}
		}
		caps, err := c.Rebalance()
		if err != nil {
			b.Fatal(err)
		}
		gap = caps[0] - caps[1]
	}
	b.ReportMetric(gap, "cap_differentiation_w")
}

// BenchmarkExtensionStudy runs the §VI future-work variants (log
// transform, variance-aware selection, both) through the full harness
// and reports the compliance each buys for Model+FL.
func BenchmarkExtensionStudy(b *testing.B) {
	var results []eval.ExtensionResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = eval.RunExtensionStudy(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		switch r.Variant.Name {
		case "base":
			b.ReportMetric(r.ModelFLPctUnder*100, "modelFL_under_base")
		case "+log+va":
			b.ReportMetric(r.ModelFLPctUnder*100, "modelFL_under_log_va")
		}
	}
}
