package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBenchSingleExperiment(t *testing.T) {
	if err := run("table2", 1, 5, 0, "", "all", 1, ""); err != nil {
		t.Fatal(err)
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	if err := run("table99", 1, 5, 0, "", "all", 1, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBenchChaosExperiment(t *testing.T) {
	if err := run("chaos", 1, 5, 0, "", "sensor-stuck", 7, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("chaos", 1, 5, 0, "", "not-a-scenario", 1, ""); err == nil {
		t.Error("unknown chaos scenario accepted")
	}
}

func TestBenchCSVExport(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	if err := run("accuracy", 1, 5, 0, dir, "all", 1, ""); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"profiles.csv", "cases.csv"} {
		if fi, err := os.Stat(filepath.Join(dir, f)); err != nil || fi.Size() == 0 {
			t.Errorf("%s missing or empty", f)
		}
	}
}

func TestBenchSuiteAndWorstExperiments(t *testing.T) {
	if err := run("suite", 1, 5, 0, "", "all", 1, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("worst", 1, 5, 0, "", "all", 1, ""); err != nil {
		t.Fatal(err)
	}
}
