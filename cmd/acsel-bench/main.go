// Command acsel-bench regenerates every table and figure of the
// paper's evaluation (§V) from the simulated testbed: Table I/II/III
// and Figures 1–9, plus the cluster assignments of each
// cross-validation fold.
//
// Usage:
//
//	acsel-bench                 # run everything
//	acsel-bench -exp table3     # one experiment
//	acsel-bench -iterations 3   # profiling iterations per config
//	acsel-bench -list           # list experiment names
//	acsel-bench -exp chaos      # Table III under every fault scenario
//	acsel-bench -exp chaos -chaos-scenario sensor-stuck -chaos-seed 7
//	acsel-bench -exp table3 -metrics-dump out.json   # keep the telemetry
//	acsel-bench -metrics-addr :9090                  # live /metrics + pprof
//	acsel-bench -fold-workers 1                      # sequential folds (same output)
//	acsel-bench -model-cache .acsel-cache            # reuse fold models across runs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"acsel/internal/eval"
	"acsel/internal/fault"
	"acsel/internal/kernels"
	"acsel/internal/metrics"
	"acsel/internal/trace"

	// Register the adaptive runtime's metric families: acsel-bench never
	// executes rts itself, but a -metrics-dump snapshot should carry the
	// full inventory so dashboards and CI assertions see every family,
	// silent ones at zero.
	_ "acsel/internal/rts"
)

var experiments = []string{
	"fig1", "table1", "fig2", "table2", "fig3",
	"table3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	"clusters", "accuracy", "extensions", "suite", "worst",
	"chaos",
}

func main() {
	exp := flag.String("exp", "all", "experiment to run ("+strings.Join(experiments, ", ")+" or all; chaos only runs when named explicitly)")
	iters := flag.Int("iterations", 3, "profiling iterations per configuration")
	k := flag.Int("k", 5, "cluster count")
	list := flag.Bool("list", false, "list experiment names and exit")
	csvDir := flag.String("csv-dir", "", "optional directory for CSV exports (profiles and cases)")
	chaosScenario := flag.String("chaos-scenario", "all", "fault scenario for -exp chaos (a scenario name or all)")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-plan seed for -exp chaos")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text) and /debug/pprof on this address for the duration of the run")
	metricsDump := flag.String("metrics-dump", "", "write a JSON metrics snapshot to this file at exit")
	foldWorkers := flag.Int("fold-workers", 0, "concurrent cross-validation folds (0 = GOMAXPROCS, 1 = sequential; any value yields identical output)")
	modelCache := flag.String("model-cache", "", "optional directory for the content-addressed trained-model cache")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Println(e)
		}
		return
	}

	if *metricsAddr != "" {
		addr, stop, err := metrics.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acsel-bench: metrics listener:", err)
			os.Exit(1)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "acsel-bench: metrics shutdown:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "metrics: serving http://%s/metrics (and /debug/pprof)\n", addr)
	}

	if err := run(*exp, *iters, *k, *foldWorkers, *csvDir, *chaosScenario, *chaosSeed, *modelCache); err != nil {
		fmt.Fprintln(os.Stderr, "acsel-bench:", err)
		os.Exit(1)
	}
	if *metricsDump != "" {
		if err := metrics.DumpFile(*metricsDump); err != nil {
			fmt.Fprintln(os.Stderr, "acsel-bench: metrics dump:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: snapshot written to %s\n", *metricsDump)
	}
}

func run(exp string, iters, k, foldWorkers int, csvDir, chaosScenario string, chaosSeed int64, modelCache string) error {
	selected := map[string]bool{}
	if exp == "all" {
		for _, e := range experiments {
			selected[e] = true
		}
		// Chaos deliberately injects faults; it never rides along with
		// "all", keeping the default outputs identical to a clean run.
		delete(selected, "chaos")
	} else {
		ok := false
		for _, e := range experiments {
			if e == exp {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", exp)
		}
		selected[exp] = true
	}

	h := eval.NewHarness()
	h.Opts.Iterations = iters
	h.Opts.K = k
	h.Workers = foldWorkers
	h.ModelCacheDir = modelCache
	fmt.Fprintf(os.Stderr, "characterizing 65 kernel/input combinations at %d configurations (%d iterations)...\n",
		h.Profiler.Space.Len(), iters)
	ev, err := h.Run()
	if err != nil {
		return err
	}
	space := h.Profiler.Space

	emit := func(name, body string, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if selected[name] {
			fmt.Println(body)
		}
		return nil
	}

	if selected["fig1"] {
		fmt.Println(eval.ReportFig1())
	}
	t1, err := ev.ReportTable1(space)
	if err := emit("table1", t1, err); err != nil {
		return err
	}
	f2, err := ev.ReportFig2(space)
	if err := emit("fig2", f2, err); err != nil {
		return err
	}
	if selected["fig2"] {
		plot, err := ev.PlotFrontier(space, eval.FrontierKernelID)
		if err != nil {
			return err
		}
		fmt.Println(plot)
	}
	if selected["table2"] {
		fmt.Println(eval.ReportTable2())
	}
	if selected["fig3"] {
		// Show the LULESH fold's tree, as an arbitrary representative.
		f3, err := ev.ReportFig3("LULESH")
		if err != nil {
			return err
		}
		fmt.Println(f3)
	}
	if selected["table3"] {
		fmt.Println(ev.ReportTable3())
	}
	if selected["fig4"] {
		fmt.Println(ev.ReportFig4())
	}
	if selected["fig5"] {
		fmt.Println(ev.ReportFig5())
	}
	if selected["fig6"] {
		fmt.Println(ev.ReportFig6())
	}
	f7, err := ev.ReportFig7(space)
	if err := emit("fig7", f7, err); err != nil {
		return err
	}
	if selected["fig7"] {
		plot, err := ev.PlotFrontier(space, eval.Fig7KernelID)
		if err != nil {
			return err
		}
		fmt.Println(plot)
	}
	if selected["fig8"] {
		fmt.Println(ev.ReportFig8())
	}
	if selected["fig9"] {
		fmt.Println(ev.ReportFig9())
	}
	if selected["accuracy"] {
		acc, err := ev.ReportAccuracy()
		if err != nil {
			return err
		}
		fmt.Println(acc)
	}
	if selected["suite"] {
		fmt.Println(kernels.ReportSuite())
	}
	if selected["worst"] {
		w, err := ev.ReportWorstPredicted(10)
		if err != nil {
			return err
		}
		fmt.Println(w)
	}
	if selected["chaos"] {
		scenarios := fault.Scenarios()
		if chaosScenario != "all" {
			sc, ok := fault.ScenarioByName(chaosScenario)
			if !ok {
				return fmt.Errorf("unknown chaos scenario %q", chaosScenario)
			}
			scenarios = []fault.Scenario{sc}
		}
		fmt.Fprintf(os.Stderr, "re-running the method comparison under %d fault scenario(s), seed %d...\n",
			len(scenarios), chaosSeed)
		rep, err := ev.RunChaos(scenarios, chaosSeed, nil)
		if err != nil {
			return err
		}
		fmt.Println(rep.Report())
	}
	if selected["extensions"] {
		fmt.Fprintln(os.Stderr, "running extension study (4 full evaluations)...")
		results, err := eval.RunExtensionStudy(iters)
		if err != nil {
			return err
		}
		fmt.Println(eval.ReportExtensionStudy(results))
	}
	if csvDir != "" {
		if err := exportCSV(csvDir, ev); err != nil {
			return err
		}
	}
	if selected["clusters"] {
		var folds []string
		for f := range ev.FoldModels {
			folds = append(folds, f)
		}
		sort.Strings(folds)
		for _, f := range folds {
			fmt.Printf("cluster assignments (fold holding out %s):\n%s\n", f, eval.ReportClusterAssignments(ev.FoldModels[f]))
		}
	}
	return nil
}

// exportCSV writes the characterization and case data for external
// analysis.
func exportCSV(dir string, ev *eval.Evaluation) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	err := trace.WriteFile(filepath.Join(dir, "profiles.csv"), func(w io.Writer) error {
		return trace.WriteProfilesCSV(w, ev.Profiles)
	})
	if err != nil {
		return err
	}
	err = trace.WriteFile(filepath.Join(dir, "cases.csv"), func(w io.Writer) error {
		return trace.WriteCasesCSV(w, ev.Cases)
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "CSV exports written to %s\n", dir)
	return nil
}
