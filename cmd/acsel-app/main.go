// Command acsel-app executes a proxy application through the adaptive
// runtime: offline training on the other benchmarks, then timestep
// after timestep of the app's kernels with per-kernel sampling,
// classification, pinning, and (optionally) an FL feedback loop and a
// dynamic power-cap schedule.
//
// Usage:
//
//	acsel-app -bench LULESH -input Large -cap 24 -steps 10
//	acsel-app -bench CoMD -input Small -cap 20 -fl -cap-schedule 30,20,15
//	acsel-app -bench LULESH -input Large -cap 24 -fault-plan sensor-stuck:7
//	acsel-app -bench LULESH -cap 24 -metrics-addr :9090 -metrics-dump run.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"acsel/internal/core"
	"acsel/internal/fault"
	"acsel/internal/kernels"
	"acsel/internal/metrics"
	"acsel/internal/profiler"
	"acsel/internal/rts"
)

func main() {
	bench := flag.String("bench", "LULESH", "application benchmark to run")
	input := flag.String("input", "Large", "input size")
	capW := flag.Float64("cap", 24, "initial node power cap (watts)")
	steps := flag.Int("steps", 8, "application timesteps")
	fl := flag.Bool("fl", false, "enable the feedback frequency limiter (Model+FL)")
	z := flag.Float64("z", 0, "variance-aware selection margin (0 disables)")
	capSchedule := flag.String("cap-schedule", "", "comma-separated caps applied at successive timesteps")
	faultPlan := flag.String("fault-plan", "", "fault scenario to inject, as scenario[:seed] (empty = clean run)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text) and /debug/pprof on this address for the duration of the run")
	metricsDump := flag.String("metrics-dump", "", "write a JSON metrics snapshot to this file at exit")
	flag.Parse()

	if *metricsAddr != "" {
		addr, stop, err := metrics.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "acsel-app: metrics listener:", err)
			os.Exit(1)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "acsel-app: metrics shutdown:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "metrics: serving http://%s/metrics (and /debug/pprof)\n", addr)
	}

	if err := run(*bench, *input, *capW, *steps, *fl, *z, *capSchedule, *faultPlan); err != nil {
		fmt.Fprintln(os.Stderr, "acsel-app:", err)
		os.Exit(1)
	}
	if *metricsDump != "" {
		if err := metrics.DumpFile(*metricsDump); err != nil {
			fmt.Fprintln(os.Stderr, "acsel-app: metrics dump:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: snapshot written to %s\n", *metricsDump)
	}
}

func run(bench, input string, capW float64, steps int, fl bool, z float64, capSchedule, faultPlan string) error {
	var inj *fault.Injector
	if faultPlan != "" {
		var err error
		if inj, err = fault.ParsePlan(faultPlan); err != nil {
			return err
		}
	}

	var caps []float64
	if capSchedule != "" {
		for _, tok := range strings.Split(capSchedule, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return fmt.Errorf("bad cap schedule entry %q: %w", tok, err)
			}
			caps = append(caps, v)
		}
	}

	var training, app []kernels.Kernel
	for _, c := range kernels.Combos() {
		if c.Benchmark == bench {
			if c.Input == input {
				app = c.Kernels
			}
			continue
		}
		training = append(training, c.Kernels...)
	}
	if len(app) == 0 {
		return fmt.Errorf("unknown benchmark/input %s/%s", bench, input)
	}

	prof := profiler.New()
	opts := core.DefaultTrainOptions()
	fmt.Fprintf(os.Stderr, "training on %d kernels (leave-%s-out)...\n", len(training), bench)
	profiles, err := core.Characterize(prof, training, opts)
	if err != nil {
		return err
	}
	model, err := core.Train(prof.Space, profiles, opts)
	if err != nil {
		return err
	}

	runtime, err := rts.New(model, rts.Options{CapW: capW, FL: fl, VarAwareZ: z, Faults: inj})
	if err != nil {
		return err
	}

	fmt.Printf("%s %s: %d kernels/timestep, %d timesteps, cap %.0f W (FL=%v)\n",
		bench, input, len(app), steps, capW, fl)
	if inj != nil {
		fmt.Printf("fault plan: %s\n", faultPlan)
	}
	for step := 0; step < steps; step++ {
		if step < len(caps) {
			if err := runtime.SetCap(caps[step]); err != nil {
				return err
			}
		}
		var stepTime, stepEnergy float64
		viol := 0
		for _, k := range app {
			s, err := runtime.RunKernel(k)
			if err != nil {
				return err
			}
			stepTime += s.TimeSec * k.TimeShare
			stepEnergy += s.EnergyJ * k.TimeShare
			if !s.UnderCap {
				viol++
			}
		}
		fmt.Printf("timestep %2d: cap %5.1f W, weighted time %.4f s, weighted energy %7.2f J, violations %d/%d\n",
			step, runtime.Cap(), stepTime, stepEnergy, viol, len(app))
	}

	sum := runtime.Summarize()
	fmt.Printf("\ntotals: %d kernel executions (%d sampling, %d pinned), %.3f s, %.1f J, %d violations\n",
		sum.Steps, sum.SampledSteps, sum.PinnedSteps, sum.TimeSec, sum.EnergyJ, sum.Violations)
	if sum.Health != nil {
		fmt.Printf("faults: %d quarantined, %d sensor-lost, %d apply retries (%d terminal failures), %d demotions, %d recoveries\n",
			sum.Quarantined, sum.SensorLost, sum.ApplyRetries, sum.ApplyFailures, sum.Demotions, sum.Recoveries)
		fmt.Println("\nper-kernel health:")
		for _, k := range app {
			h, ok := runtime.HealthFor(k.ID())
			if !ok {
				continue
			}
			fmt.Printf("  %-36s rung %-9s demotions %d recoveries %d quarantined %d dropouts %d divergence %.2f\n",
				k.Name, h.Rung, h.Demotions, h.Recoveries, h.Quarantined, h.Dropouts, h.Divergence)
		}
	}

	fmt.Println("\nfinal per-kernel selections:")
	for _, k := range app {
		cfg, cluster, ok := runtime.SelectionFor(k.ID())
		if !ok {
			continue
		}
		fmt.Printf("  %-36s cluster %d  %v\n", k.Name, cluster, cfg)
	}
	return nil
}
