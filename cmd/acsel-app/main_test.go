package main

import "testing"

func TestAppEndToEnd(t *testing.T) {
	if err := run("CoMD", "Small", 22, 4, true, 0, "30,22", ""); err != nil {
		t.Fatal(err)
	}
}

func TestAppVarianceAware(t *testing.T) {
	if err := run("LU", "Small", 20, 3, false, 1.0, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestAppErrors(t *testing.T) {
	if err := run("NotABenchmark", "Small", 22, 2, false, 0, "", ""); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run("CoMD", "Medium", 22, 2, false, 0, "", ""); err == nil {
		t.Error("unknown input accepted")
	}
	if err := run("CoMD", "Small", 22, 2, false, 0, "abc", ""); err == nil {
		t.Error("malformed cap schedule accepted")
	}
	if err := run("CoMD", "Small", 22, 2, false, 0, "", "not-a-scenario"); err == nil {
		t.Error("unknown fault plan accepted")
	}
}

func TestAppFaultPlan(t *testing.T) {
	if err := run("CoMD", "Small", 22, 4, false, 0, "", "blackout:3"); err != nil {
		t.Fatal(err)
	}
}
