// Command acsel-predict runs the online stage (§III-C) for one kernel:
// it loads a trained model, executes the kernel's first two iterations
// on the two sample configurations (Table II), classifies it into a
// cluster, prints the predicted Pareto frontier, and selects the
// configuration predicted to maximize performance under a power cap.
//
// With -remote it asks a running acsel-serve selection service instead
// of loading a model locally; the selection semantics — including the
// typed infeasible-cap error — are identical on both paths.
//
// Usage:
//
//	acsel-predict -model model.json -kernel LULESH/Small/CalcQForElems -cap 22
//	acsel-predict -model model.json -kernel LU/Large/lud -cap 30 -z 1.5
//	acsel-predict -remote http://127.0.0.1:9090 -kernel LU/Small/lud -cap 22
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"acsel/internal/apu"
	"acsel/internal/core"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
	"acsel/internal/query"
)

func main() {
	modelPath := flag.String("model", "model.json", "trained model file from acsel-train")
	kernelID := flag.String("kernel", "", "kernel to schedule, as Benchmark/Input/Name")
	capW := flag.Float64("cap", 25, "power cap in watts")
	z := flag.Float64("z", 0, "variance-aware margin (0 disables; §VI extension)")
	showFrontier := flag.Bool("frontier", true, "print the predicted Pareto frontier")
	remote := flag.String("remote", "", "query a running selection service at this base URL instead of loading -model")
	flag.Parse()

	if err := run(*modelPath, *kernelID, *capW, *z, *showFrontier, *remote); err != nil {
		fmt.Fprintln(os.Stderr, "acsel-predict:", err)
		os.Exit(1)
	}
}

func findKernel(id string) (kernels.Kernel, error) {
	for _, c := range kernels.Combos() {
		for _, k := range c.Kernels {
			if k.ID() == id {
				return k, nil
			}
		}
	}
	return kernels.Kernel{}, fmt.Errorf("unknown kernel %q (want Benchmark/Input/Name, e.g. %q)",
		id, "LULESH/Small/CalcQForElems")
}

func run(modelPath, kernelID string, capW, z float64, showFrontier bool, remote string) error {
	if kernelID == "" {
		return fmt.Errorf("missing -kernel")
	}
	k, err := findKernel(kernelID)
	if err != nil {
		return err
	}
	if remote != "" {
		return runRemote(remote, k, capW, z)
	}
	f, err := os.Open(modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	model, err := core.Load(f)
	if err != nil {
		return err
	}

	// Online stage: the first two iterations run on the sample configs.
	p := profiler.New()
	cpuRun, err := p.RunConfig(k, apu.SampleConfigCPU(), 0)
	if err != nil {
		return err
	}
	gpuRun, err := p.RunConfig(k, apu.SampleConfigGPU(), 1)
	if err != nil {
		return err
	}
	sr := core.SampleRuns{CPU: cpuRun, GPU: gpuRun}

	cl, err := model.Classify(sr)
	if err != nil {
		return err
	}
	fmt.Printf("kernel %s -> cluster %d\n", kernelID, cl)
	fmt.Printf("sample runs: CPU %.4fs @ %.1f W, GPU %.4fs @ %.1f W\n",
		cpuRun.TimeSec, cpuRun.TotalPowerW(), gpuRun.TimeSec, gpuRun.TotalPowerW())

	if showFrontier {
		frontier, _, err := model.PredictedFrontier(sr)
		if err != nil {
			return err
		}
		fmt.Println("predicted Pareto frontier (power W -> perf 1/s):")
		for _, pt := range frontier.Points() {
			cfg := model.Space.Configs[pt.ID]
			fmt.Printf("  %6.1f W  %10.2f /s  %v\n", pt.Power, pt.Perf, cfg)
		}
	}

	var sel core.Selection
	if z > 0 {
		sel, err = model.SelectUnderCapVarAware(sr, capW, z)
	} else {
		sel, err = model.SelectUnderCap(sr, capW)
	}
	if err != nil {
		return err
	}
	if !sel.MeetsCapPredicted {
		// The fallback selection is the minimum-predicted-power config,
		// so its predicted power is the model's feasibility floor.
		return fmt.Errorf("%w: cap %.1f W < minimum feasible %.1f W for %s",
			core.ErrCapInfeasible, capW, sel.Predicted.PowerW, kernelID)
	}
	fmt.Printf("selection under %.1f W: %v\n", capW, sel.Config)
	fmt.Printf("  predicted: %.2f /s at %.1f W (meets cap: %v)\n",
		sel.Predicted.Perf, sel.Predicted.PowerW, sel.MeetsCapPredicted)

	// Validate against the machine: run the chosen configuration once.
	final, err := p.Run(k, sel.ConfigID, 2)
	if err != nil {
		return err
	}
	fmt.Printf("  measured:  %.2f /s at %.1f W\n", final.Perf(), final.TotalPowerW())
	return nil
}

// runRemote asks a selection service for the same decision. The service
// precomputed this kernel's sample runs from the identical deterministic
// online stage, so local and remote selections agree bitwise.
func runRemote(baseURL string, k kernels.Kernel, capW, z float64) error {
	c := &query.Client{BaseURL: baseURL}
	resp, err := c.Select(context.Background(), query.Request{Kernel: k.ID(), CapW: capW, Z: z})
	if err != nil {
		return err
	}
	sel := resp.Selection
	if !sel.MeetsCapPredicted {
		return fmt.Errorf("%w: cap %.1f W < minimum feasible %.1f W for %s (model %s)",
			core.ErrCapInfeasible, capW, resp.MinPowerW, k.ID(), shortHash(resp.ModelHash))
	}
	fmt.Printf("kernel %s -> cluster %d (model %s seq %d, effective cap %.4f W)\n",
		k.ID(), sel.Cluster, shortHash(resp.ModelHash), resp.ModelSeq, resp.EffectiveCapW)
	fmt.Printf("selection under %.1f W: %v\n", capW, sel.Config)
	fmt.Printf("  predicted: %.2f /s at %.1f W (meets cap: %v)\n",
		sel.Predicted.Perf, sel.Predicted.PowerW, sel.MeetsCapPredicted)

	// Validate against the local machine: run the chosen configuration
	// once, exactly as the local path does.
	final, err := profiler.New().RunConfig(k, sel.Config, 2)
	if err != nil {
		return err
	}
	fmt.Printf("  measured:  %.2f /s at %.1f W\n", final.Perf(), final.TotalPowerW())
	return nil
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
