package main

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"acsel/internal/core"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
	"acsel/internal/query"
)

func trainModel(t *testing.T) *core.Model {
	t.Helper()
	var ks []kernels.Kernel
	for _, c := range kernels.Combos() {
		if c.Benchmark == "LU" {
			continue
		}
		ks = append(ks, c.Kernels...)
	}
	p := profiler.New()
	opts := core.DefaultTrainOptions()
	opts.Iterations = 1
	profs, err := core.Characterize(p, ks, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(p.Space, profs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func writeModel(t *testing.T) string {
	t.Helper()
	m := trainModel(t)
	path := filepath.Join(t.TempDir(), "model.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPredictEndToEnd(t *testing.T) {
	model := writeModel(t)
	if err := run(model, "LU/Small/lud", 20, 0, true, ""); err != nil {
		t.Fatal(err)
	}
	// Variance-aware path.
	if err := run(model, "LU/Small/lud", 20, 1.5, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestPredictErrors(t *testing.T) {
	model := writeModel(t)
	if err := run(model, "", 20, 0, false, ""); err == nil {
		t.Error("missing kernel accepted")
	}
	if err := run(model, "No/Such/Kernel", 20, 0, false, ""); err == nil {
		t.Error("unknown kernel accepted")
	}
	if err := run("/nonexistent/model.json", "LU/Small/lud", 20, 0, false, ""); err == nil {
		t.Error("missing model accepted")
	}
}

// TestPredictInfeasibleCap pins the typed error: a cap below the
// model's minimum feasible predicted power must surface
// core.ErrCapInfeasible, not a silent fallback selection.
func TestPredictInfeasibleCap(t *testing.T) {
	model := writeModel(t)
	err := run(model, "LU/Small/lud", 0.5, 0, false, "")
	if !errors.Is(err, core.ErrCapInfeasible) {
		t.Fatalf("cap 0.5 W: err = %v, want core.ErrCapInfeasible", err)
	}
}

// TestPredictRemoteAgreesWithLocal runs the same queries through the
// local model and through a selection service, asserting the selections
// are identical structs and that the infeasible-cap error is the same
// typed error on both paths.
func TestPredictRemoteAgreesWithLocal(t *testing.T) {
	m := trainModel(t)
	modelPath := writeModel(t)
	const kernelID = "LU/Small/lud"
	k, err := findKernel(kernelID)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := query.NewService(m, query.Options{Kernels: []kernels.Kernel{k}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(query.NewHandler(svc))
	defer srv.Close()

	// The command-level paths succeed and fail identically.
	if err := run(modelPath, kernelID, 20, 0, false, ""); err != nil {
		t.Fatalf("local: %v", err)
	}
	if err := run(modelPath, kernelID, 20, 1.5, false, srv.URL); err != nil {
		t.Fatalf("remote: %v", err)
	}
	lerr := run(modelPath, kernelID, 0.5, 0, false, "")
	rerr := run(modelPath, kernelID, 0.5, 0, false, srv.URL)
	if !errors.Is(lerr, core.ErrCapInfeasible) || !errors.Is(rerr, core.ErrCapInfeasible) {
		t.Fatalf("infeasible cap: local %v, remote %v, want core.ErrCapInfeasible on both", lerr, rerr)
	}

	// The selections themselves agree bitwise. Caps are chosen on the
	// service's quantization grid so the effective cap equals the
	// requested one.
	sr, ok := svc.SampleRuns(kernelID)
	if !ok {
		t.Fatalf("service has no shard for %s", kernelID)
	}
	c := &query.Client{BaseURL: srv.URL}
	for _, capW := range []float64{5, 10, 20, 27.5, 40} {
		for _, z := range []float64{0, 1.5} {
			var local core.Selection
			var err error
			if z > 0 {
				local, err = m.SelectUnderCapVarAware(sr, capW, z)
			} else {
				local, err = m.SelectUnderCap(sr, capW)
			}
			if err != nil {
				t.Fatal(err)
			}
			resp, err := c.Select(context.Background(), query.Request{Kernel: kernelID, CapW: capW, Z: z})
			if err != nil {
				t.Fatalf("remote cap=%v z=%v: %v", capW, z, err)
			}
			if resp.EffectiveCapW != capW {
				t.Fatalf("cap %v quantized to %v; pick caps on the grid", capW, resp.EffectiveCapW)
			}
			if resp.Selection != local {
				t.Fatalf("cap=%v z=%v: remote %+v != local %+v", capW, z, resp.Selection, local)
			}
		}
	}
}

func TestFindKernel(t *testing.T) {
	k, err := findKernel("LULESH/Small/CalcQForElems")
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "CalcQForElems" {
		t.Errorf("kernel = %v", k.Name)
	}
}
