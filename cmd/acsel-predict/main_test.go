package main

import (
	"os"
	"path/filepath"
	"testing"

	"acsel/internal/core"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
)

func writeModel(t *testing.T) string {
	t.Helper()
	var ks []kernels.Kernel
	for _, c := range kernels.Combos() {
		if c.Benchmark == "LU" {
			continue
		}
		ks = append(ks, c.Kernels...)
	}
	p := profiler.New()
	opts := core.DefaultTrainOptions()
	opts.Iterations = 1
	profs, err := core.Characterize(p, ks, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(p.Space, profs, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPredictEndToEnd(t *testing.T) {
	model := writeModel(t)
	if err := run(model, "LU/Small/lud", 20, 0, true); err != nil {
		t.Fatal(err)
	}
	// Variance-aware path.
	if err := run(model, "LU/Small/lud", 20, 1.5, false); err != nil {
		t.Fatal(err)
	}
}

func TestPredictErrors(t *testing.T) {
	model := writeModel(t)
	if err := run(model, "", 20, 0, false); err == nil {
		t.Error("missing kernel accepted")
	}
	if err := run(model, "No/Such/Kernel", 20, 0, false); err == nil {
		t.Error("unknown kernel accepted")
	}
	if err := run("/nonexistent/model.json", "LU/Small/lud", 20, 0, false); err == nil {
		t.Error("missing model accepted")
	}
}

func TestFindKernel(t *testing.T) {
	k, err := findKernel("LULESH/Small/CalcQForElems")
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "CalcQForElems" {
		t.Errorf("kernel = %v", k.Name)
	}
}
