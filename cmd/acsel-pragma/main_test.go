package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRewriteFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "app.c")
	out := filepath.Join(dir, "app_prof.c")
	src := "#pragma acsel profile(\"k\")\n{\n  work();\n}\n"
	if err := os.WriteFile(in, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, out, false); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "acsel_profile_begin") {
		t.Errorf("output not instrumented:\n%s", got)
	}
}

func TestRunListMode(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "app.c")
	if err := os.WriteFile(in, []byte("#pragma acsel profile(\"abc\")\nx();\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent/file.c", "", false); err == nil {
		t.Error("missing input accepted")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "bad.c")
	if err := os.WriteFile(in, []byte("#pragma acsel profile(broken)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, "", false); err == nil {
		t.Error("malformed pragma accepted")
	}
}
