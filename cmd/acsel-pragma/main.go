// Command acsel-pragma is the source preprocessor of §III-D: it rewrites
// profiling pragmas in C-like source into profiling-library calls.
//
// Usage:
//
//	acsel-pragma < annotated.c > instrumented.c
//	acsel-pragma -list < annotated.c        # just list instrumented kernels
//	acsel-pragma -in app.c -out app_prof.c
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"acsel/internal/pragma"
	"acsel/internal/trace"
)

func main() {
	in := flag.String("in", "", "input file (default stdin)")
	out := flag.String("out", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list instrumented kernel names instead of rewriting")
	flag.Parse()

	if err := run(*in, *out, *list); err != nil {
		fmt.Fprintln(os.Stderr, "acsel-pragma:", err)
		os.Exit(1)
	}
}

func run(in, out string, list bool) error {
	var src []byte
	var err error
	if in == "" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(in)
	}
	if err != nil {
		return err
	}

	rewritten, sites, err := pragma.Preprocess(string(src))
	if err != nil {
		return err
	}

	if list {
		for _, s := range sites {
			fmt.Printf("%d\t%s\n", s.Line, s.Kernel)
		}
		return nil
	}

	if out != "" {
		err := trace.WriteFile(out, func(w io.Writer) error {
			_, err := io.WriteString(w, rewritten)
			return err
		})
		if err != nil {
			return err
		}
	} else if _, err := io.WriteString(os.Stdout, rewritten); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "instrumented %d kernel site(s)\n", len(sites))
	return nil
}
