// The fleet process test: a child acsel-fleet coordinator serves three
// in-process loopback agents. The test asserts the fleet converges to
// a full-budget assignment, survives a SIGKILL + restart of the
// coordinator by resuming from its journal, and redistributes a killed
// agent's watts within two rebalance rounds — with the total
// assignment never exceeding the budget at any observed point.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"acsel/internal/core"
	"acsel/internal/fleet"
	"acsel/internal/hierarchy"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
	"acsel/internal/rts"
)

const childEnv = "ACSEL_FLEET_CHILD_CFG"

func TestMain(m *testing.M) {
	if cfgJSON := os.Getenv(childEnv); cfgJSON != "" {
		os.Exit(childMain(cfgJSON))
	}
	os.Exit(m.Run())
}

func childMain(cfgJSON string) int {
	var cfg config
	if err := json.Unmarshal([]byte(cfgJSON), &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "child config:", err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		return 1
	}
	return 0
}

func childCmd(t *testing.T, cfg config, out io.Writer) *exec.Cmd {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), childEnv+"="+string(data))
	cmd.Stdout, cmd.Stderr = out, out
	return cmd
}

var (
	setupOnce sync.Once
	setupErr  error
	gModel    *core.Model
	gApps     [][]kernels.Kernel
)

func sharedModel(t *testing.T) (*core.Model, [][]kernels.Kernel) {
	t.Helper()
	setupOnce.Do(func() {
		var training []kernels.Kernel
		var comd, lulesh []kernels.Kernel
		for _, c := range kernels.Combos() {
			switch {
			case c.Benchmark == "CoMD" && c.Input == "Large":
				comd = c.Kernels
			case c.Benchmark == "LULESH" && c.Input == "Small":
				lulesh = c.Kernels
			case c.Benchmark == "SMC" || c.Benchmark == "LU":
				training = append(training, c.Kernels...)
			}
		}
		p := profiler.New()
		opts := core.DefaultTrainOptions()
		opts.Iterations = 1
		opts.K = 4
		profs, err := core.Characterize(p, training, opts)
		if err != nil {
			setupErr = err
			return
		}
		gModel, setupErr = core.Train(p.Space, profs, opts)
		gApps = [][]kernels.Kernel{comd, lulesh}
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return gModel, gApps
}

// liveAgent is one in-process fleet member heartbeating a child
// coordinator.
type liveAgent struct {
	agent  *fleet.Agent
	rt     *rts.Runtime
	srv    *httptest.Server
	cancel context.CancelFunc
}

func startAgent(t *testing.T, name string, app []kernels.Kernel, coordURL string) *liveAgent {
	t.Helper()
	model, _ := sharedModel(t)
	rt, err := rts.New(model, rts.Options{CapW: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range app {
		if _, err := rt.RunKernel(k); err != nil {
			t.Fatal(err)
		}
	}
	agent, err := fleet.NewAgent(name, rt, app, fleet.AgentOptions{
		Coordinator:    coordURL,
		HeartbeatEvery: 100 * time.Millisecond,
		OrphanAfter:    2 * time.Second,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	agent.Register(mux)
	srv := httptest.NewServer(mux)
	ctx, cancel := context.WithCancel(context.Background()) //lint:ignore ctxcancel cancel is stored on liveAgent and released by t.Cleanup(la.stop)
	go func() {
		if err := agent.Run(ctx, srv.URL); err != nil {
			t.Logf("agent %s: %v", name, err)
		}
	}()
	la := &liveAgent{agent: agent, rt: rt, srv: srv, cancel: cancel}
	t.Cleanup(func() { la.stop() })
	return la
}

func (la *liveAgent) stop() {
	la.cancel()
	la.srv.Close()
}

// reservePort grabs a free loopback port and releases it, so both
// coordinator incarnations can bind the same address.
func reservePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return addr
}

// pollStatus polls GET /fleet/members until pred accepts the status,
// asserting the budget invariant on every observation along the way.
func pollStatus(t *testing.T, coordURL string, budget float64, what string, pred func(fleet.Status) bool) fleet.Status {
	t.Helper()
	deadline := time.After(time.Minute)
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		case <-tick.C:
		}
		resp, err := http.Get(coordURL + fleet.PathMembers)
		if err != nil {
			continue // coordinator down (e.g. between kill and restart)
		}
		var st fleet.Status
		derr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if derr != nil {
			continue
		}
		if st.AssignedTotalW > budget+1e-6 {
			t.Fatalf("observed %v W assigned, over the %v W budget (while waiting for %s)",
				st.AssignedTotalW, budget, what)
		}
		if pred(st) {
			return st
		}
	}
}

func TestFleetConvergesSurvivesCrashAndEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess fleet test")
	}
	dir := t.TempDir()
	addr := reservePort(t)
	coordURL := "http://" + addr
	const budget = 60.0

	cfg := config{
		Addr:           addr,
		BudgetW:        budget,
		Policy:         "water-fill",
		RebalanceEvery: 150 * time.Millisecond,
		LeaseTTL:       time.Second,
		Journal:        filepath.Join(dir, "fleet.acsj"),
		PullTimeout:    2 * time.Second,
		PullRetries:    2,
		AddrFile:       filepath.Join(dir, "addr"),
		MaxRestarts:    3,
	}

	var out bytes.Buffer
	cmd := childCmd(t, cfg, &out)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Signal(syscall.SIGTERM) //lint:ignore errcheck best-effort shutdown
			cmd.Wait()                          //lint:ignore errcheck best-effort shutdown
		}
		if t.Failed() {
			t.Logf("coordinator output:\n%s", out.String())
		}
	}()

	_, apps := sharedModel(t)
	agents := []*liveAgent{
		startAgent(t, "alpha", apps[0], coordURL),
		startAgent(t, "beta", apps[1], coordURL),
		startAgent(t, "gamma", apps[0], coordURL),
	}

	// Phase 1: the fleet converges to a full-budget assignment.
	st := pollStatus(t, coordURL, budget, "3 members at full budget", func(st fleet.Status) bool {
		return len(st.Members) == 3 && math.Abs(st.AssignedTotalW-budget) < 1e-6
	})
	for _, m := range st.Members {
		if m.AssignedW < hierarchy.MinNodeCapW-1e-9 {
			t.Fatalf("%s assigned %v W, below the floor", m.Name, m.AssignedW)
		}
	}
	for _, a := range agents {
		if c := a.rt.Cap(); c < hierarchy.MinNodeCapW-1e-9 {
			t.Fatalf("agent %s runs at %v W, below the floor", a.agent.Name(), c)
		}
	}

	// Phase 2: SIGKILL the coordinator; its successor resumes from the
	// journal and keeps the same fleet at full budget.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	killed = true
	cmd.Wait() //lint:ignore errcheck SIGKILL makes a nonzero exit certain
	cmd = childCmd(t, cfg, &out)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed = false
	st = pollStatus(t, coordURL, budget, "recovered coordinator at full budget", func(st fleet.Status) bool {
		return st.Recovered && len(st.Members) == 3 && math.Abs(st.AssignedTotalW-budget) < 1e-6
	})

	// Phase 3: kill one agent; its lease expires and its watts are
	// redistributed across the survivors within two rebalance rounds of
	// the eviction.
	agents[2].stop()
	st = pollStatus(t, coordURL, budget, "eviction of gamma", func(st fleet.Status) bool {
		return len(st.Members) == 2
	})
	evictionRound := st.Round
	st = pollStatus(t, coordURL, budget, "redistribution after eviction", func(st fleet.Status) bool {
		return st.Round >= evictionRound+2
	})
	if len(st.Members) != 2 {
		t.Fatalf("%d members two rounds after eviction, want 2", len(st.Members))
	}
	if math.Abs(st.AssignedTotalW-budget) > 1e-6 {
		t.Fatalf("two rounds after eviction the survivors hold %v W, want the full %v W redistributed",
			st.AssignedTotalW, budget)
	}
	for _, m := range st.Members {
		if m.Name == "gamma" {
			t.Fatal("evicted member still on the books")
		}
	}

	// Clean shutdown.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	killed = true
	if err := cmd.Wait(); err != nil {
		t.Fatalf("coordinator exit after SIGTERM: %v\n%s", err, out.String())
	}
}
