// Command acsel-fleet runs the fleet power-budget coordinator: the
// top of the paper's machine hierarchy (§I) as a long-running,
// supervised network service. Agents (acsel-serve -fleet) join by
// heartbeating; each rebalance round the coordinator pulls every
// member's demand and predicted utility curve, divides the fleet
// budget with the internal/hierarchy dividers, and pushes per-node
// caps transactionally. A node that stops heartbeating is evicted on
// lease expiry and its watts redistributed; with -journal the
// coordinator checkpoints every round's assignment and a restarted
// coordinator resumes where it left off.
//
// Usage:
//
//	acsel-fleet -addr :9000 -budget 60 -policy water-fill
//	acsel-fleet -addr :9000 -budget 60 -journal fleet.acsj -rebalance-every 2s
//	acsel-fleet -addr :9000 -budget 45 -fault-plan net-flaky:7   # chaos drill
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"acsel/internal/fault"
	"acsel/internal/fleet"
	"acsel/internal/hierarchy"
	"acsel/internal/metrics"
	"acsel/internal/supervise"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.Addr, "addr", ":9000", "serve the fleet protocol, /metrics, and /debug/pprof on this address")
	flag.Float64Var(&cfg.BudgetW, "budget", 60, "fleet-wide power budget (watts)")
	flag.StringVar(&cfg.Policy, "policy", "water-fill", "budget divider: uniform, demand-proportional, or water-fill")
	flag.DurationVar(&cfg.RebalanceEvery, "rebalance-every", time.Second, "period between rebalance rounds")
	flag.DurationVar(&cfg.LeaseTTL, "lease", 3*time.Second, "membership lease; a silent node is evicted after this long")
	flag.StringVar(&cfg.Journal, "journal", "", "assignment checkpoint journal (restart resumes from it)")
	flag.DurationVar(&cfg.PullTimeout, "pull-timeout", 2*time.Second, "per-attempt timeout for report pulls and cap pushes")
	flag.IntVar(&cfg.PullRetries, "pull-retries", 2, "retries beyond the first attempt per RPC")
	flag.StringVar(&cfg.FaultPlan, "fault-plan", "", "network fault scenario, as scenario[:seed] (empty = clean)")
	flag.IntVar(&cfg.Rounds, "rounds", 0, "rebalance rounds before a clean exit (0 = run until signalled)")
	flag.StringVar(&cfg.AddrFile, "addr-file", "", "write the bound listen address to this file once serving")
	flag.IntVar(&cfg.MaxRestarts, "max-restarts", 5, "consecutive rebalance-loop restarts before giving up (0 = unlimited)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, cfg, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "acsel-fleet:", err)
		os.Exit(1)
	}
}

// config is the full coordinator configuration, JSON-serializable so
// the crash test can hand an identical configuration to a child
// process.
type config struct {
	Addr           string
	BudgetW        float64
	Policy         string
	RebalanceEvery time.Duration
	LeaseTTL       time.Duration
	Journal        string
	PullTimeout    time.Duration
	PullRetries    int
	FaultPlan      string
	Rounds         int
	AddrFile       string
	MaxRestarts    int
}

// run builds the coordinator (resuming from the journal if one
// exists), serves the fleet protocol, and drives the supervised
// rebalance loop until the round budget is spent or ctx is signalled.
func run(ctx context.Context, cfg config, stderr io.Writer) error {
	if cfg.Addr == "" {
		return errors.New("-addr is required (agents must reach the coordinator)")
	}
	if cfg.Rounds < 0 {
		return errors.New("-rounds must be non-negative")
	}
	policy, err := hierarchy.ParsePolicy(cfg.Policy)
	if err != nil {
		return err
	}
	var inj *fault.Injector
	if cfg.FaultPlan != "" {
		if inj, err = fault.ParsePlan(cfg.FaultPlan); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "acsel-fleet: injecting %s on the network seam\n", inj)
	}

	coord, err := fleet.NewCoordinator(fleet.CoordinatorOptions{
		BudgetW:        cfg.BudgetW,
		Policy:         policy,
		LeaseTTL:       cfg.LeaseTTL,
		RebalanceEvery: cfg.RebalanceEvery,
		Journal:        cfg.Journal,
		Client: &fleet.Client{
			Faults:  inj,
			Retries: cfg.PullRetries,
			Timeout: cfg.PullTimeout,
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer coord.Close() //lint:ignore errcheck every round already synced its checkpoint

	mux := metrics.Default.NewMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	coord.Register(mux)
	addr, stopHTTP, err := metrics.ListenAndServe(cfg.Addr, mux)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopHTTP(); err != nil {
			fmt.Fprintln(stderr, "acsel-fleet: http shutdown:", err)
		}
	}()
	if cfg.AddrFile != "" {
		if err := writeAtomic(cfg.AddrFile, []byte(addr+"\n")); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "acsel-fleet: serving http://%s (budget %.1f W, %s, lease %v)\n",
		addr, cfg.BudgetW, policy, cfg.LeaseTTL)

	// The rebalance loop runs under a panic-isolating supervisor: a
	// bug in one round must not take the membership server down with
	// it.
	sup := supervise.New(supervise.Options{
		Name:        "fleet-rebalance",
		MaxRestarts: cfg.MaxRestarts,
		OnRestart: func(attempt int, err error, backoff time.Duration) {
			fmt.Fprintf(stderr, "acsel-fleet: rebalance loop restart %d after %v (backoff %v)\n",
				attempt, err, backoff)
		},
	})
	start := coord.Round()
	err = sup.Run(ctx, func(wctx context.Context) error {
		t := time.NewTicker(cfg.RebalanceEvery)
		defer t.Stop()
		for cfg.Rounds == 0 || coord.Round()-start < cfg.Rounds {
			select {
			case <-wctx.Done():
				return wctx.Err()
			case <-t.C:
			}
			res, rerr := coord.RebalanceOnce(wctx)
			if rerr != nil {
				fmt.Fprintf(stderr, "acsel-fleet: %v\n", rerr)
				continue
			}
			sup.ResetBackoff()
			fmt.Fprintf(stderr, "acsel-fleet: round %d: %d cap(s) pushed, %.1f/%.1f W assigned, %d evicted, %d pull / %d push failure(s)\n",
				res.Round, len(res.Caps), res.AssignedTotalW, cfg.BudgetW,
				len(res.Evicted), res.PullFailures, res.PushFailures)
		}
		return nil
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	st := coord.Status()
	fmt.Fprintf(stderr, "acsel-fleet: done: %d rounds, %d member(s), %.1f/%.1f W assigned\n",
		st.Round, len(st.Members), st.AssignedTotalW, st.BudgetW)
	return nil
}

// writeAtomic writes a small control file atomically: the process
// test polls for the address file and must never read a partial one.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
