// The crash test proper: a child acsel-serve process is SIGKILLed in
// the middle of an epoch and restarted; the resumed run must produce a
// summary identical to an uninterrupted run of the same configuration
// and fault plan. The child is this test binary re-executed — TestMain
// diverts to the real run() when the config environment variable is
// set — so the test exercises the same code a production kill would.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"acsel/internal/checkpoint"
	"acsel/internal/rts"
)

const childEnv = "ACSEL_SERVE_CHILD_CFG"

func TestMain(m *testing.M) {
	if cfgJSON := os.Getenv(childEnv); cfgJSON != "" {
		os.Exit(childMain(cfgJSON))
	}
	code := m.Run()
	if cacheDir != "" {
		os.RemoveAll(cacheDir) //lint:ignore errcheck best-effort temp cleanup
	}
	os.Exit(code)
}

func childMain(cfgJSON string) int {
	var cfg config
	if err := json.Unmarshal([]byte(cfgJSON), &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "child config:", err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		return 1
	}
	return 0
}

func childCmd(t *testing.T, cfg config, out io.Writer) *exec.Cmd {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), childEnv+"="+string(data))
	cmd.Stdout, cmd.Stderr = out, out
	return cmd
}

// runChild executes a service run in a child process to completion.
func runChild(t *testing.T, cfg config) {
	t.Helper()
	var out bytes.Buffer
	cmd := childCmd(t, cfg, &out)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("child: %v\n%s", err, out.String())
		}
	case <-time.After(2 * time.Minute):
		cmd.Process.Kill() //lint:ignore errcheck already failing the test
		<-done
		t.Fatalf("child timed out\n%s", out.String())
	}
}

// waitForSteps polls the journal until it holds at least n step
// records (reads are tolerant, so racing the writer is safe).
func waitForSteps(t *testing.T, path string, n int) {
	t.Helper()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	deadline := time.After(2 * time.Minute)
	for {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %d journaled steps in %s", n, path)
		case <-tick.C:
			recs, _, err := checkpoint.ReadFile(path)
			if err != nil {
				continue
			}
			steps := 0
			for _, rec := range recs {
				if rec.Type == rts.RecordStep {
					steps++
				}
			}
			if steps >= n {
				return
			}
		}
	}
}

// preserveOnFailure copies the test's journals and summaries into
// ACSEL_CRASH_ARTIFACT_DIR (CI's upload directory) when the test
// fails.
func preserveOnFailure(t *testing.T, dir string) {
	t.Cleanup(func() {
		dst := os.Getenv("ACSEL_CRASH_ARTIFACT_DIR")
		if dst == "" || !t.Failed() {
			return
		}
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Logf("artifact dir: %v", err)
			return
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Logf("artifact scan: %v", err)
			return
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				continue
			}
			if err := os.WriteFile(filepath.Join(dst, t.Name()+"-"+e.Name()), data, 0o644); err != nil {
				t.Logf("artifact copy: %v", err)
			}
		}
		t.Logf("crash artifacts preserved in %s", dst)
	})
}

func TestCrashKillMidEpochRecoversEquivalently(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	dir := t.TempDir()
	preserveOnFailure(t, dir)

	base := config{
		Bench: "LULESH", Input: "Large", CapW: 22,
		FaultPlan:       "pstate-flaky:3",
		Epochs:          8,
		CheckpointEvery: 3,
		TrainIterations: 2,
		ModelCache:      sharedCache(t),
		MaxRestarts:     3,
	}

	// Uninterrupted reference run.
	ref := base
	ref.Journal = filepath.Join(dir, "ref.acsj")
	ref.SummaryPath = filepath.Join(dir, "ref.json")
	runChild(t, ref)
	want := readSummary(t, ref.SummaryPath)
	if want.Recovered {
		t.Fatal("reference run claims recovery")
	}

	// Victim run: paced so SIGKILL lands mid-flight, killed once the
	// journal shows it is inside its second epoch.
	victim := base
	victim.Journal = filepath.Join(dir, "victim.acsj")
	victim.SummaryPath = filepath.Join(dir, "victim.json")
	victim.EpochDelay = 25 * time.Millisecond
	var out bytes.Buffer
	cmd := childCmd(t, victim, &out)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	waitForSteps(t, victim.Journal, appKernelCount(t, victim)+2)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err == nil {
		t.Log("child exited before the kill landed; resume still must be equivalent")
	}

	// Resume to completion and compare against the uninterrupted run.
	resume := victim
	resume.EpochDelay = 0
	runChild(t, resume)
	got := readSummary(t, resume.SummaryPath)
	if !got.Recovered {
		t.Fatal("resumed run did not recover from the journal")
	}
	compareSummaries(t, want, got)
}
