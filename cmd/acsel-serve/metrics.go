package main

import "acsel/internal/metrics"

// Metric families of the serve loop itself; the checkpoint, rts, and
// supervise layers register their own.
var (
	mEpochs = metrics.NewCounter("acsel_serve_epochs_total",
		"Epochs the serve loop completed (including the epoch a recovery resumed into).")
	mDegradedSyncs = metrics.NewCounter("acsel_serve_degraded_syncs_total",
		"Per-step journal syncs forced while a seam breaker was not closed.")
)
