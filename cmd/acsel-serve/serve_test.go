package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"acsel/internal/kernels"
	"acsel/internal/supervise"
)

// The trained-model cache shared by every test (and every crash-test
// child process): training happens once, everything after loads it.
var (
	cacheOnce sync.Once
	cacheDir  string
)

func sharedCache(t *testing.T) string {
	cacheOnce.Do(func() {
		d, err := os.MkdirTemp("", "acsel-serve-cache-*")
		if err != nil {
			t.Fatalf("cache dir: %v", err)
		}
		cacheDir = d
	})
	return cacheDir
}

// baseConfig is the shared test configuration: small training, a
// deterministic fault plan, no listener.
func baseConfig(t *testing.T, dir, name string) config {
	return config{
		Bench: "LULESH", Input: "Large", CapW: 22,
		FaultPlan:       "pstate-flaky:3",
		Epochs:          3,
		CheckpointEvery: 2,
		TrainIterations: 2,
		ModelCache:      sharedCache(t),
		MaxRestarts:     3,
		Journal:         filepath.Join(dir, name+".acsj"),
		SummaryPath:     filepath.Join(dir, name+".json"),
	}
}

func appKernelCount(t *testing.T, cfg config) int {
	for _, c := range kernels.Combos() {
		if c.Benchmark == cfg.Bench && c.Input == cfg.Input {
			return len(c.Kernels)
		}
	}
	t.Fatalf("unknown benchmark/input %s/%s", cfg.Bench, cfg.Input)
	return 0
}

func readSummary(t *testing.T, path string) runSummary {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("summary: %v", err)
	}
	var doc runSummary
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("summary: %v", err)
	}
	return doc
}

// compareSummaries asserts the observable run state matches; the
// recovery fields (Recovered, ReplayedSteps, TornTail) legitimately
// differ between an interrupted and an uninterrupted run.
func compareSummaries(t *testing.T, want, got runSummary) {
	t.Helper()
	if got.Epochs != want.Epochs || got.Steps != want.Steps {
		t.Errorf("epochs/steps = %d/%d, want %d/%d", got.Epochs, got.Steps, want.Epochs, want.Steps)
	}
	if !reflect.DeepEqual(got.Summary, want.Summary) {
		t.Errorf("summaries diverge:\n got %+v\nwant %+v", got.Summary, want.Summary)
	}
}

func TestServeRunsAndWritesSummary(t *testing.T) {
	dir := t.TempDir()
	cfg := baseConfig(t, dir, "run")
	cfg.Addr = "127.0.0.1:0" // exercise the healthz/readyz/metrics listener
	if err := run(context.Background(), cfg, io.Discard); err != nil {
		t.Fatal(err)
	}
	sum := readSummary(t, cfg.SummaryPath)
	if sum.Recovered {
		t.Error("fresh run claims recovery")
	}
	if want := cfg.Epochs * appKernelCount(t, cfg); sum.Steps != want || sum.Epochs != cfg.Epochs {
		t.Errorf("ran %d steps over %d epochs, want %d over %d", sum.Steps, sum.Epochs, want, cfg.Epochs)
	}
	if sum.Summary.Health == nil {
		t.Error("serve runs with the watchdog armed; Health must be populated")
	}
}

func TestServeResumeAfterCleanExitMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()

	ref := baseConfig(t, dir, "ref")
	ref.Epochs = 6
	if err := run(context.Background(), ref, io.Discard); err != nil {
		t.Fatal(err)
	}
	want := readSummary(t, ref.SummaryPath)

	// Same run split across two processes: 3 epochs, clean exit, then
	// resume to 6.
	split := baseConfig(t, dir, "split")
	split.Epochs = 3
	if err := run(context.Background(), split, io.Discard); err != nil {
		t.Fatal(err)
	}
	split.Epochs = 6
	if err := run(context.Background(), split, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := readSummary(t, split.SummaryPath)
	if !got.Recovered {
		t.Fatal("resumed run did not recover from the journal")
	}
	compareSummaries(t, want, got)
}

func TestServeTornTailRecovery(t *testing.T) {
	dir := t.TempDir()

	ref := baseConfig(t, dir, "ref")
	ref.Epochs = 6
	if err := run(context.Background(), ref, io.Discard); err != nil {
		t.Fatal(err)
	}
	want := readSummary(t, ref.SummaryPath)

	torn := baseConfig(t, dir, "torn")
	torn.Epochs = 3
	if err := run(context.Background(), torn, io.Discard); err != nil {
		t.Fatal(err)
	}
	// Maul the journal's tail: a torn final record must be dropped, not
	// fatal.
	f, err := os.OpenFile(torn.Journal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x42, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	torn.Epochs = 6
	if err := run(context.Background(), torn, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := readSummary(t, torn.SummaryPath)
	if !got.TornTail {
		t.Error("recovery did not report the torn tail")
	}
	if !got.Recovered {
		t.Fatal("torn-tail run did not recover")
	}
	compareSummaries(t, want, got)
}

func TestServeSigtermSnapshotsAndResumes(t *testing.T) {
	dir := t.TempDir()

	ref := baseConfig(t, dir, "ref")
	ref.Epochs = 5
	if err := run(context.Background(), ref, io.Discard); err != nil {
		t.Fatal(err)
	}
	want := readSummary(t, ref.SummaryPath)

	// A cancelled context is the in-process shape of SIGTERM: the run
	// must exit cleanly, snapshot, and resume where it left off.
	stop := baseConfig(t, dir, "stopped")
	stop.Epochs = 0 // until signalled
	stop.EpochDelay = time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		defer cancel()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		deadline := time.After(30 * time.Second)
		for {
			select {
			case <-deadline:
				return
			case <-tick.C:
				if _, err := os.Stat(stop.Journal); err == nil {
					return
				}
			}
		}
	}()
	if err := run(ctx, stop, io.Discard); err != nil {
		t.Fatalf("signalled run must exit cleanly, got %v", err)
	}
	stop.Epochs = 5
	stop.EpochDelay = 0
	if err := run(context.Background(), stop, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := readSummary(t, stop.SummaryPath)
	compareSummaries(t, want, got)
}

func TestServeRejectsBadConfig(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		mut  func(*config)
		want string
	}{
		{"missing journal", func(c *config) { c.Journal = "" }, "-journal is required"},
		{"negative epochs", func(c *config) { c.Epochs = -1 }, "non-negative"},
		{"bad fault plan", func(c *config) { c.FaultPlan = "no-such-scenario" }, "scenario"},
		{"unknown bench", func(c *config) { c.Bench = "NotABenchmark" }, "unknown benchmark"},
	}
	for _, tc := range cases {
		cfg := baseConfig(t, dir, "bad")
		tc.mut(&cfg)
		err := run(context.Background(), cfg, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestReadyzReflectsLifecycleAndBreakers(t *testing.T) {
	s := &service{
		brSMU:    supervise.NewBreaker(supervise.BreakerOptions{Name: "t-smu", FailureThreshold: 2}),
		brPState: supervise.NewBreaker(supervise.BreakerOptions{Name: "t-pstate"}),
		brKernel: supervise.NewBreaker(supervise.BreakerOptions{Name: "t-kernel"}),
	}
	s.ready.Store("starting")
	rec := httptest.NewRecorder()
	s.readyz(rec, nil)
	if rec.Code != 503 {
		t.Errorf("starting readyz = %d, want 503", rec.Code)
	}

	s.ready.Store("serving")
	rec = httptest.NewRecorder()
	s.readyz(rec, nil)
	if rec.Code != 200 {
		t.Errorf("serving readyz = %d, want 200", rec.Code)
	}

	// Trip the SMU breaker: still serving, but degraded.
	s.brSMU.Record(errSMUSeam)
	s.brSMU.Record(errSMUSeam)
	rec = httptest.NewRecorder()
	s.readyz(rec, nil)
	if rec.Code != 503 {
		t.Errorf("degraded readyz = %d, want 503", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "breaker smu: open") {
		t.Errorf("degraded body does not name the open breaker:\n%s", body)
	}
}
