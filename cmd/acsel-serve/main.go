// Command acsel-serve runs the adaptive runtime as a supervised,
// crash-safe long-running service: it trains offline (leave-bench-out,
// like acsel-app), then drives the application's kernels epoch after
// epoch under a panic-isolating supervisor with an epoch watchdog,
// journaling every executed step to an append-only checkpoint journal
// and compacting it to an atomic snapshot on an epoch interval and on
// SIGTERM. On start it recovers from the journal: restore the last
// snapshot, then deterministically replay the journaled tail steps and
// verify each replayed step is identical to what the journal recorded.
// Circuit breakers on the SMU, P-state, and kernel-divergence seams
// observe step outcomes; an open breaker flips /readyz to degraded and
// forces per-step journal syncs, but never alters the kernel schedule
// — recovery equivalence depends on the schedule being deterministic.
//
// Usage:
//
//	acsel-serve -journal run.acsj -bench LULESH -input Large -cap 24 -epochs 8
//	acsel-serve -journal run.acsj -epochs 0 -addr :9090        # until SIGTERM
//	acsel-serve -journal run.acsj -fault-plan pstate-flaky:3 -summary out.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.Bench, "bench", "LULESH", "application benchmark to run")
	flag.StringVar(&cfg.Input, "input", "Large", "input size")
	flag.Float64Var(&cfg.CapW, "cap", 24, "node power cap (watts)")
	flag.BoolVar(&cfg.FL, "fl", false, "enable the feedback frequency limiter (Model+FL)")
	flag.Float64Var(&cfg.Z, "z", 0, "variance-aware selection margin (0 disables)")
	flag.StringVar(&cfg.FaultPlan, "fault-plan", "", "fault scenario to inject, as scenario[:seed] (empty = clean run)")
	flag.StringVar(&cfg.Journal, "journal", "", "checkpoint journal path (required)")
	flag.IntVar(&cfg.Epochs, "epochs", 8, "epochs to run before a clean exit (0 = run until signalled)")
	flag.IntVar(&cfg.CheckpointEvery, "checkpoint-every", 4, "epochs between snapshot compactions (0 disables periodic compaction)")
	flag.DurationVar(&cfg.EpochDelay, "epoch-delay", 0, "pause between epochs (a real service paces itself)")
	flag.DurationVar(&cfg.EpochDeadline, "epoch-deadline", 0, "watchdog deadline per epoch; a stalled epoch restarts the worker (0 disables)")
	flag.StringVar(&cfg.Addr, "addr", "", "serve /healthz, /readyz, /metrics, and /debug/pprof on this address")
	flag.StringVar(&cfg.Fleet, "fleet", "", "join the fleet coordinator at this base URL (requires -addr; serves /fleet/report and /fleet/cap)")
	flag.StringVar(&cfg.NodeName, "node-name", "", "fleet member name (default: the bench/input pair)")
	flag.DurationVar(&cfg.HeartbeatEvery, "heartbeat", time.Second, "fleet lease-renewal period")
	flag.DurationVar(&cfg.OrphanAfter, "orphan-after", 0, "drop to the floor cap after this long without coordinator contact (0 = 5x heartbeat)")
	flag.StringVar(&cfg.SummaryPath, "summary", "", "write a JSON run summary to this file at clean exit")
	flag.IntVar(&cfg.TrainIterations, "train-iterations", 0, "profiling iterations per configuration during training (0 = paper default)")
	flag.StringVar(&cfg.ModelCache, "model-cache", "", "optional directory for the content-addressed trained-model cache")
	flag.IntVar(&cfg.MaxRestarts, "max-restarts", 5, "consecutive worker restarts before giving up (0 = unlimited)")
	flag.BoolVar(&cfg.Query, "query", false, "serve the selection query API (POST /v1/select, /v1/select/batch, GET+POST /v1/models) on -addr")
	flag.IntVar(&cfg.QueryWorkers, "query-workers", 0, "selection query worker pool size (0 = default)")
	flag.IntVar(&cfg.QueryQueue, "query-queue", 0, "selection query queue depth before admission control sheds (0 = default)")
	flag.IntVar(&cfg.QueryCache, "query-cache", 0, "selection LRU cache entries (0 = default, negative disables)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, cfg, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "acsel-serve:", err)
		os.Exit(1)
	}
}

// config is the full service configuration. It is JSON-serializable so
// the crash test can hand an identical configuration to a child
// process.
type config struct {
	Bench           string
	Input           string
	CapW            float64
	FL              bool
	Z               float64
	FaultPlan       string
	Journal         string
	Epochs          int
	CheckpointEvery int
	EpochDelay      time.Duration
	EpochDeadline   time.Duration
	Addr            string
	Fleet           string
	NodeName        string
	HeartbeatEvery  time.Duration
	OrphanAfter     time.Duration
	SummaryPath     string
	TrainIterations int
	ModelCache      string
	MaxRestarts     int
	Query           bool
	QueryWorkers    int
	QueryQueue      int
	QueryCache      int
}
