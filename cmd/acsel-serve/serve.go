package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"reflect"
	"sync/atomic"
	"time"

	"acsel/internal/checkpoint"
	"acsel/internal/core"
	"acsel/internal/fault"
	"acsel/internal/fleet"
	"acsel/internal/kernels"
	"acsel/internal/metrics"
	"acsel/internal/profiler"
	"acsel/internal/query"
	"acsel/internal/rts"
	"acsel/internal/supervise"
)

// runSummary is the JSON document written at clean exit. The crash
// test compares the Summary (and epoch/step counts) of an interrupted
// and resumed service against an uninterrupted one; Recovered and
// ReplayedSteps are the recovery's own testimony and legitimately
// differ.
type runSummary struct {
	Bench         string      `json:"bench"`
	Input         string      `json:"input"`
	CapW          float64     `json:"cap_w"`
	Epochs        int         `json:"epochs"`
	Steps         int         `json:"steps"`
	Recovered     bool        `json:"recovered"`
	ReplayedSteps int         `json:"replayed_steps"`
	TornTail      bool        `json:"torn_tail"`
	Summary       rts.Summary `json:"summary"`
}

// service is one running instance of the daemon.
type service struct {
	cfg    config
	rt     *rts.Runtime
	app    []kernels.Kernel
	w      *checkpoint.Writer
	stderr io.Writer

	// agent is the node's fleet membership, when -fleet is set: the
	// coordinator pulls this runtime's report and pushes its cap
	// through the same mux that serves /metrics.
	agent *fleet.Agent

	// Position in the epoch schedule; derived from the journal on
	// recovery (the schedule never skips kernels, so the step count
	// fully determines it).
	epoch int
	pos   int

	recovered bool
	replayed  int
	tornTail  bool

	// Seam breakers, fed observationally from step outcomes and health
	// deltas. They never gate RunKernel — the schedule must stay
	// deterministic for crash recovery — they modulate readiness and
	// journal durability instead.
	brSMU    *supervise.Breaker
	brPState *supervise.Breaker
	brKernel *supervise.Breaker
	prev     map[string]rts.KernelHealth

	sup   *supervise.Supervisor
	ready atomic.Value // lifecycle string: starting / serving / stopping

	// cancelEpoch is the watchdog's lever: cancelling the worker's
	// per-invocation context restarts the worker without stopping the
	// service.
	cancelEpoch atomic.Value // context.CancelFunc
}

var (
	errSMUSeam    = errors.New("smu seam: reading rejected or lost")
	errPStateSeam = errors.New("pstate seam: transition retried or failed")
	errKernelSeam = errors.New("kernel seam: divergence demoted the kernel")
)

// run builds, recovers, and drives the service until the epoch budget
// is spent or ctx is cancelled (SIGTERM/SIGINT), then snapshots the
// journal and writes the summary. Both exits are clean.
func run(ctx context.Context, cfg config, stderr io.Writer) error {
	if cfg.Journal == "" {
		return errors.New("-journal is required")
	}
	if cfg.Epochs < 0 || cfg.CheckpointEvery < 0 {
		return errors.New("-epochs and -checkpoint-every must be non-negative")
	}
	var inj *fault.Injector
	if cfg.FaultPlan != "" {
		var err error
		if inj, err = fault.ParsePlan(cfg.FaultPlan); err != nil {
			return err
		}
	}

	var training, app []kernels.Kernel
	for _, c := range kernels.Combos() {
		if c.Benchmark == cfg.Bench {
			if c.Input == cfg.Input {
				app = c.Kernels
			}
			continue
		}
		training = append(training, c.Kernels...)
	}
	if len(app) == 0 {
		return fmt.Errorf("unknown benchmark/input %s/%s", cfg.Bench, cfg.Input)
	}

	prof := profiler.New()
	opts := core.DefaultTrainOptions()
	if cfg.TrainIterations > 0 {
		opts.Iterations = cfg.TrainIterations
	}
	fmt.Fprintf(stderr, "training on %d kernels (leave-%s-out)...\n", len(training), cfg.Bench)
	profiles, err := core.Characterize(prof, training, opts)
	if err != nil {
		return err
	}
	model, cached, err := core.TrainCached(prof.Space, profiles, opts, cfg.ModelCache)
	if err != nil {
		return err
	}
	if cached {
		fmt.Fprintln(stderr, "trained model loaded from cache")
	}

	rt, err := rts.New(model, rts.Options{
		CapW: cfg.CapW, FL: cfg.FL, VarAwareZ: cfg.Z,
		Faults: inj, Watchdog: true,
	})
	if err != nil {
		return err
	}

	s := &service{
		cfg: cfg, rt: rt, app: app, stderr: stderr,
		prev: map[string]rts.KernelHealth{},
		brSMU: supervise.NewBreaker(supervise.BreakerOptions{
			Name: "smu", FailureThreshold: 3, OpenCalls: 8, HalfOpenSuccesses: 2}),
		brPState: supervise.NewBreaker(supervise.BreakerOptions{
			Name: "pstate", FailureThreshold: 3, OpenCalls: 8, HalfOpenSuccesses: 2}),
		brKernel: supervise.NewBreaker(supervise.BreakerOptions{
			Name: "kernel", FailureThreshold: 2, OpenCalls: 8, HalfOpenSuccesses: 2}),
	}
	s.ready.Store("starting")

	if err := s.recover(); err != nil {
		return err
	}
	defer func() {
		s.w.Close() //lint:ignore errcheck final compaction already synced the data
	}()

	if cfg.Fleet != "" && cfg.Addr == "" {
		return errors.New("-fleet requires -addr (the coordinator calls the agent back)")
	}
	if cfg.Query && cfg.Addr == "" {
		return errors.New("-query requires -addr (the selection API is served over HTTP)")
	}
	if cfg.Addr != "" {
		mux := metrics.Default.NewMux()
		if cfg.Query {
			qs, qerr := query.NewService(model, query.Options{
				Workers:    cfg.QueryWorkers,
				QueueDepth: cfg.QueryQueue,
				CacheSize:  cfg.QueryCache,
				Faults:     inj,
			})
			if qerr != nil {
				return qerr
			}
			defer qs.Close()
			query.Register(mux, qs)
			fmt.Fprintf(stderr, "selection query API: POST %s, POST %s, GET/POST %s\n",
				query.PathSelect, query.PathSelectBatch, query.PathModels)
		}
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("/readyz", s.readyz)
		if cfg.Fleet != "" {
			name := cfg.NodeName
			if name == "" {
				name = fmt.Sprintf("%s-%s", cfg.Bench, cfg.Input)
			}
			agent, aerr := fleet.NewAgent(name, rt, app, fleet.AgentOptions{
				Coordinator:    cfg.Fleet,
				HeartbeatEvery: cfg.HeartbeatEvery,
				OrphanAfter:    cfg.OrphanAfter,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(stderr, format+"\n", args...)
				},
			})
			if aerr != nil {
				return aerr
			}
			agent.Register(mux)
			s.agent = agent
		}
		addr, stopHTTP, err := metrics.ListenAndServe(cfg.Addr, mux)
		if err != nil {
			return err
		}
		defer func() {
			if err := stopHTTP(); err != nil {
				fmt.Fprintln(stderr, "acsel-serve: http shutdown:", err)
			}
		}()
		if s.agent != nil {
			go func() {
				if err := s.agent.Run(ctx, "http://"+addr); err != nil {
					fmt.Fprintln(stderr, "acsel-serve: fleet agent:", err)
				}
			}()
			fmt.Fprintf(stderr, "fleet member %s reporting to %s\n", s.agent.Name(), cfg.Fleet)
		}
		fmt.Fprintf(stderr, "serving http://%s/healthz /readyz /metrics\n", addr)
	}

	s.sup = supervise.New(supervise.Options{
		Name:        "serve-loop",
		MaxRestarts: cfg.MaxRestarts,
		OnRestart: func(attempt int, err error, backoff time.Duration) {
			fmt.Fprintf(stderr, "acsel-serve: worker restart %d after %v (backoff %v)\n", attempt, err, backoff)
		},
	})
	var wd *supervise.Watchdog
	if cfg.EpochDeadline > 0 {
		wd = supervise.NewWatchdog("epoch", cfg.EpochDeadline, func() {
			if cancel, ok := s.cancelEpoch.Load().(context.CancelFunc); ok {
				cancel()
			}
		})
		defer wd.Stop()
	}

	s.ready.Store("serving")
	err = s.sup.Run(ctx, func(parent context.Context) error {
		ictx, cancel := context.WithCancel(parent)
		defer cancel()
		s.cancelEpoch.Store(cancel)
		werr := s.loop(ictx, wd)
		if werr != nil && parent.Err() == nil && ictx.Err() != nil {
			// Only the watchdog cancels ictx without the parent: surface
			// it as a restartable failure, not a shutdown.
			return fmt.Errorf("epoch watchdog: deadline %v exceeded", cfg.EpochDeadline)
		}
		return werr
	})
	s.ready.Store("stopping")
	if err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	// Clean completion or a signal: compact the journal to a single
	// snapshot so the next start restores instantly, then write the
	// summary.
	if err := s.compact(); err != nil {
		return err
	}
	if err := s.writeSummary(); err != nil {
		return err
	}
	sum := s.rt.Summarize()
	fmt.Fprintf(stderr, "acsel-serve: done: %d epochs, %d steps (%d replayed), %.3f s, %.1f J, %d violations\n",
		s.epoch, sum.Steps, s.replayed, sum.TimeSec, sum.EnergyJ, sum.Violations)
	return nil
}

// loop is the supervised worker: epochs until the budget is spent.
func (s *service) loop(ctx context.Context, wd *supervise.Watchdog) error {
	for s.cfg.Epochs == 0 || s.epoch < s.cfg.Epochs {
		if err := ctx.Err(); err != nil {
			return err
		}
		if wd != nil {
			wd.Pet()
		}
		if err := s.runEpoch(ctx); err != nil {
			return err
		}
		// A completed epoch is progress: the next failure backs off from
		// the base again.
		s.sup.ResetBackoff()
		if s.cfg.CheckpointEvery > 0 && s.epoch%s.cfg.CheckpointEvery == 0 {
			if err := s.compact(); err != nil {
				return err
			}
		}
		if s.cfg.EpochDelay > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(s.cfg.EpochDelay):
			}
		}
	}
	return nil
}

// runEpoch drives every kernel once (resuming mid-epoch after a
// recovery), journaling each executed step.
func (s *service) runEpoch(ctx context.Context) error {
	for ; s.pos < len(s.app); s.pos++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		k := s.app[s.pos]
		step, err := s.rt.RunKernel(k)
		if err != nil {
			return fmt.Errorf("epoch %d %s: %w", s.epoch, k.ID(), err)
		}
		rec, err := rts.EncodeStep(step)
		if err != nil {
			return err
		}
		if err := s.w.Append(rec); err != nil {
			return err
		}
		s.observeSeams(k.ID(), step)
		if s.degraded() {
			// An open seam breaker is evidence the node is in trouble;
			// buy durability per step while it lasts.
			if err := s.w.Sync(); err != nil {
				return err
			}
			mDegradedSyncs.Inc()
		}
	}
	s.pos = 0
	s.epoch++
	mEpochs.Inc()
	return s.w.Sync()
}

// recover opens the journal (truncating any torn tail), restores the
// last snapshot, and deterministically replays the journaled tail
// steps — verifying each replayed step is byte-identical to what the
// journal recorded, so configuration drift between runs is caught
// rather than silently diverging.
func (s *service) recover() error {
	if _, info, err := checkpoint.ReadFile(s.cfg.Journal); err == nil && info.Truncated {
		s.tornTail = true
		fmt.Fprintf(s.stderr, "acsel-serve: journal has a torn tail; keeping %d records (%d bytes)\n",
			info.Records, info.ValidBytes)
	}
	w, recs, err := checkpoint.OpenAppend(s.cfg.Journal)
	if err != nil {
		return err
	}
	s.w = w
	if len(recs) == 0 {
		// Fresh journal: anchor it with a snapshot of the fresh runtime
		// so every journal starts with a restorable record.
		rec, err := rts.EncodeSnapshot(s.rt.Snapshot())
		if err != nil {
			return err
		}
		if err := s.w.Append(rec); err != nil {
			return err
		}
		return s.w.Sync()
	}

	lastSnap := -1
	for i, rec := range recs {
		if rec.Type == rts.RecordSnapshot {
			lastSnap = i
		}
	}
	if lastSnap < 0 {
		return fmt.Errorf("journal %s has no snapshot record", s.cfg.Journal)
	}
	snap, err := rts.DecodeSnapshot(recs[lastSnap])
	if err != nil {
		return err
	}
	if err := s.rt.Restore(snap); err != nil {
		return err
	}
	for _, kc := range snap.Kernels {
		if h, ok := s.rt.HealthFor(kc.Key); ok {
			s.prev[kc.Key] = h
		}
	}

	base := len(s.rt.Steps())
	for i, rec := range recs[lastSnap+1:] {
		want, err := rts.DecodeStep(rec)
		if err != nil {
			return err
		}
		k := s.app[(base+i)%len(s.app)]
		if want.Kernel != k.ID() {
			return fmt.Errorf("journal step %d names %s where the schedule runs %s (flags changed between runs?)",
				i, want.Kernel, k.ID())
		}
		got, err := s.rt.RunKernel(k)
		if err != nil {
			return fmt.Errorf("replaying step %d (%s): %w", i, want.Kernel, err)
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("deterministic replay diverged from the journal at step %d (%s): got %+v, journal %+v",
				i, want.Kernel, got, want)
		}
		s.observeSeams(k.ID(), got)
		s.replayed++
	}
	s.recovered = true
	total := len(s.rt.Steps())
	s.epoch = total / len(s.app)
	s.pos = total % len(s.app)
	fmt.Fprintf(s.stderr, "acsel-serve: recovered from %s: snapshot with %d steps, %d replayed (epoch %d, position %d)\n",
		s.cfg.Journal, base, s.replayed, s.epoch, s.pos)
	return nil
}

// compact atomically rewrites the journal as a single snapshot record
// and reopens it for appending.
func (s *service) compact() error {
	rec, err := rts.EncodeSnapshot(s.rt.Snapshot())
	if err != nil {
		return err
	}
	if err := s.w.Close(); err != nil {
		return err
	}
	if err := checkpoint.WriteAtomic(s.cfg.Journal, []checkpoint.Record{rec}); err != nil {
		return err
	}
	w, _, err := checkpoint.OpenAppend(s.cfg.Journal)
	if err != nil {
		return err
	}
	s.w = w
	return nil
}

// observeSeams feeds the breakers from one executed step: the step's
// own sensor annotations (SMU), and the health-counter deltas it
// caused (P-state retries/failures, divergence demotions).
func (s *service) observeSeams(key string, step rts.Step) {
	h, ok := s.rt.HealthFor(key)
	if !ok {
		return
	}
	prev := s.prev[key]
	s.prev[key] = h
	s.feed(s.brSMU, errSMUSeam,
		step.Quarantined || step.SensorLost ||
			h.Quarantined > prev.Quarantined || h.Dropouts > prev.Dropouts)
	s.feed(s.brPState, errPStateSeam,
		h.ApplyRetries > prev.ApplyRetries || h.ApplyFailures > prev.ApplyFailures)
	s.feed(s.brKernel, errKernelSeam, h.Demotions > prev.Demotions)
}

// feed records one observation with the breaker. While open, Allow
// counts the rejected observation toward the cooldown instead — the
// breaker sits out its OpenCalls, then probes again half-open.
func (s *service) feed(b *supervise.Breaker, seamErr error, failed bool) {
	if !b.Allow() {
		return
	}
	if failed {
		b.Record(seamErr)
	} else {
		b.Record(nil)
	}
}

// degraded reports whether any seam breaker has left the closed state.
func (s *service) degraded() bool {
	return s.brSMU.State() != supervise.Closed ||
		s.brPState.State() != supervise.Closed ||
		s.brKernel.State() != supervise.Closed
}

// readyz reports readiness: 200 only while serving with every seam
// breaker closed. The body names the lifecycle state and each
// breaker's position either way.
func (s *service) readyz(w http.ResponseWriter, _ *http.Request) {
	state, _ := s.ready.Load().(string)
	degraded := s.degraded()
	if state != "serving" || degraded {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintf(w, "state: %s\ndegraded: %v\nbreaker smu: %s\nbreaker pstate: %s\nbreaker kernel: %s\n",
		state, degraded, s.brSMU.State(), s.brPState.State(), s.brKernel.State())
}

// writeSummary renders the run summary JSON (atomically: the crash
// test polls for this file, so it must never observe a half-written
// one).
func (s *service) writeSummary() error {
	if s.cfg.SummaryPath == "" {
		return nil
	}
	doc := runSummary{
		Bench:         s.cfg.Bench,
		Input:         s.cfg.Input,
		CapW:          s.cfg.CapW,
		Epochs:        s.epoch,
		Steps:         len(s.rt.Steps()),
		Recovered:     s.recovered,
		ReplayedSteps: s.replayed,
		TornTail:      s.tornTail,
		Summary:       s.rt.Summarize(),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	tmp := s.cfg.SummaryPath + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.cfg.SummaryPath)
}
