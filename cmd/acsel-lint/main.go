// Command acsel-lint runs the repository's domain-specific static
// analyzers (internal/lint) over the module and prints findings as
// file:line:col: [check] message. It exits 1 when findings remain and
// 2 on load or usage errors, so `make lint` and CI fail the build on
// any unsuppressed diagnostic.
//
// Usage:
//
//	acsel-lint [-checks list] [-list] [packages]
//
// Package patterns follow the go tool: ./... (default), ./internal/rts,
// ./internal/... . Findings are suppressed at the site with
// //lint:ignore <check> <reason>; see internal/lint.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"acsel/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("acsel-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	dir := fs.String("C", ".", "module root directory (must contain go.mod)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	diags, err := lint.Run(root, fs.Args(), analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, d := range diags {
		// Print module-relative paths: stable across machines and CI.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "acsel-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("acsel-lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}
