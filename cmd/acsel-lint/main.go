// Command acsel-lint runs the repository's domain-specific static
// analyzers (internal/lint) over the module and prints findings as
// file:line:col: [check] message. It exits 1 when findings remain and
// 2 on load or usage errors, so `make lint` and CI fail the build on
// any unsuppressed diagnostic.
//
// Usage:
//
//	acsel-lint [-checks list] [-list] [-fix] [-sarif file] [-cache] [packages]
//
// Package patterns follow the go tool: ./... (default), ./internal/rts,
// ./internal/... . Findings are suppressed at the site with
// //lint:ignore <check> <reason>; see internal/lint.
//
// -fix applies each finding's suggested fix (when one exists), gofmts
// and atomically rewrites the touched files, then re-runs the analyzers
// so the exit status reflects what remains; a second -fix run is a
// no-op. -sarif writes a SARIF 2.1.0 log for CI annotation ("-" for
// stdout). -cache keys the whole run by a SHA-256 over the module's Go
// files and the analyzer suite versions, short-circuiting unchanged
// re-runs (see internal/lint/cache.go); -cache-dir overrides the
// per-user default location.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"acsel/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("acsel-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	dir := fs.String("C", ".", "module root directory (must contain go.mod)")
	fix := fs.Bool("fix", false, "apply suggested fixes, then re-run and report what remains")
	sarifOut := fs.String("sarif", "", "write findings as SARIF 2.1.0 to this file (\"-\" for stdout)")
	useCache := fs.Bool("cache", false, "reuse cached results when the module content and analyzer suite are unchanged")
	cacheDir := fs.String("cache-dir", "", "lint result cache directory (default: user cache dir/acsel-lint)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	diags, err := runLint(root, fs.Args(), analyzers, *useCache, *cacheDir, stderr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *fix {
		res, err := lint.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		for _, f := range res.ChangedFiles {
			if rel, err := filepath.Rel(root, f); err == nil {
				f = rel
			}
			fmt.Fprintf(stderr, "acsel-lint: fixed %s\n", f)
		}
		if res.Skipped > 0 {
			fmt.Fprintf(stderr, "acsel-lint: %d conflicting fix(es) skipped; re-run -fix\n", res.Skipped)
		}
		if len(res.ChangedFiles) > 0 {
			// Fixed files changed on disk: the remaining findings (and the
			// cache key) must come from a fresh run.
			diags, err = runLint(root, fs.Args(), analyzers, *useCache, *cacheDir, stderr)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
		}
	}

	if *sarifOut != "" {
		w := stdout
		if *sarifOut != "-" {
			f, err := os.Create(*sarifOut)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			werr := lint.WriteSARIF(f, root, diags, analyzers)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintln(stderr, werr)
				return 2
			}
		} else if err := lint.WriteSARIF(w, root, diags, analyzers); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	if *sarifOut != "-" {
		for _, d := range diags {
			// Print module-relative paths: stable across machines and CI.
			if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "acsel-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// runLint dispatches to the cached or direct runner.
func runLint(root string, patterns []string, analyzers []*lint.Analyzer, useCache bool, cacheDir string, stderr io.Writer) ([]lint.Diagnostic, error) {
	if !useCache {
		return lint.Run(root, patterns, analyzers)
	}
	if cacheDir == "" {
		var err error
		cacheDir, err = lint.DefaultCacheDir()
		if err != nil {
			return nil, err
		}
	}
	diags, hit, err := lint.RunCached(root, patterns, analyzers, cacheDir)
	if err != nil {
		return nil, err
	}
	if hit {
		fmt.Fprintln(stderr, "acsel-lint: cache hit")
	}
	return diags, nil
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("acsel-lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}
