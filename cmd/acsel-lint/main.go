// Command acsel-lint runs the repository's domain-specific static
// analyzers (internal/lint) over the module and prints findings as
// file:line:col: [check] message. It exits 1 when findings remain and
// 2 on load or usage errors, so `make lint` and CI fail the build on
// any unsuppressed diagnostic.
//
// Usage:
//
//	acsel-lint [-checks list] [-list] [-fix] [-sarif file] [-cache] [-budget file] [packages]
//
// Package patterns follow the go tool: ./... (default), ./internal/rts,
// ./internal/... . Findings are suppressed at the site with
// //lint:ignore <check> <reason>; see internal/lint. The suite spans
// two tiers: unit analyzers check one package at a time, while the
// module analyzers (lockorder, sharedstate, atomicmix, puredet) build
// a whole-module call graph and function summaries, so they always
// analyze every package and report the findings that land in the
// selected ones.
//
// -fix applies each finding's suggested fix (when one exists), gofmts
// and atomically rewrites the touched files, then re-runs the analyzers
// so the exit status reflects what remains; a second -fix run is a
// no-op. -sarif writes a SARIF 2.1.0 log for CI annotation ("-" for
// stdout), including call-path traces as relatedLocations. -cache keys
// the whole run by a SHA-256 over the observable Go files and the
// analyzer suite versions, short-circuiting unchanged re-runs (see
// internal/lint/cache.go); -cache-dir overrides the per-user default
// location. -budget names a findings-ratchet file holding the maximum
// tolerated finding count: at or under budget the exit code is 0, so
// CI fails only on regressions while the recorded debt is paid down.
// -summaries dumps the call graph and per-function summaries instead
// of linting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"acsel/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("acsel-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	dir := fs.String("C", ".", "module root directory (must contain go.mod)")
	fix := fs.Bool("fix", false, "apply suggested fixes, then re-run and report what remains")
	sarifOut := fs.String("sarif", "", "write findings as SARIF 2.1.0 to this file (\"-\" for stdout)")
	useCache := fs.Bool("cache", false, "reuse cached results when the observable module content and analyzer suite are unchanged")
	cacheDir := fs.String("cache-dir", "", "lint result cache directory (default: user cache dir/acsel-lint)")
	budget := fs.String("budget", "", "findings-ratchet file: exit 0 while findings stay at or under the recorded count")
	summaries := fs.Bool("summaries", false, "dump the call graph and per-function summaries instead of linting")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		for _, a := range lint.AllModule() {
			fmt.Fprintf(stdout, "%-12s %s (module-wide)\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *summaries {
		if err := lint.DumpSummaries(root, stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		return 0
	}

	suite, err := lint.SuiteByName(*checks)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	diags, err := runLint(root, fs.Args(), suite, *useCache, *cacheDir, stderr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *fix {
		res, err := lint.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		for _, f := range res.ChangedFiles {
			if rel, err := filepath.Rel(root, f); err == nil {
				f = rel
			}
			fmt.Fprintf(stderr, "acsel-lint: fixed %s\n", f)
		}
		if res.Skipped > 0 {
			fmt.Fprintf(stderr, "acsel-lint: %d conflicting fix(es) skipped; re-run -fix\n", res.Skipped)
		}
		if len(res.ChangedFiles) > 0 {
			// Fixed files changed on disk: the remaining findings (and the
			// cache key) must come from a fresh run.
			diags, err = runLint(root, fs.Args(), suite, *useCache, *cacheDir, stderr)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
		}
	}

	if *sarifOut != "" {
		w := stdout
		if *sarifOut != "-" {
			f, err := os.Create(*sarifOut)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			werr := lint.WriteSARIF(f, root, diags, suite)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintln(stderr, werr)
				return 2
			}
		} else if err := lint.WriteSARIF(w, root, diags, suite); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	if *sarifOut != "-" {
		for _, d := range diags {
			// Print module-relative paths: stable across machines and CI.
			if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			fmt.Fprintln(stdout, d.String())
		}
	}
	if *budget != "" {
		max, err := readBudget(*budget)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if len(diags) > max {
			fmt.Fprintf(stderr, "acsel-lint: %d finding(s) exceed the budget of %d in %s — fix the regression or justify a //lint:ignore\n",
				len(diags), max, *budget)
			return 1
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "acsel-lint: %d finding(s) within budget %d\n", len(diags), max)
		}
		return 0
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "acsel-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// readBudget parses the ratchet file: one non-negative integer, blank
// lines and #-comments permitted.
func readBudget(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("acsel-lint: reading budget: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n, err := strconv.Atoi(line)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("acsel-lint: budget file %s: want a non-negative integer, got %q", path, line)
		}
		return n, nil
	}
	return 0, fmt.Errorf("acsel-lint: budget file %s is empty", path)
}

// runLint dispatches to the cached or direct runner.
func runLint(root string, patterns []string, suite lint.Suite, useCache bool, cacheDir string, stderr io.Writer) ([]lint.Diagnostic, error) {
	if !useCache {
		return lint.RunSuite(root, patterns, suite)
	}
	if cacheDir == "" {
		var err error
		cacheDir, err = lint.DefaultCacheDir()
		if err != nil {
			return nil, err
		}
	}
	diags, hit, err := lint.RunSuiteCached(root, patterns, suite, cacheDir)
	if err != nil {
		return nil, err
	}
	if hit {
		fmt.Fprintln(stderr, "acsel-lint: cache hit")
	}
	return diags, nil
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("acsel-lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}
