package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for the CLI to lint.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestRunFindings(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module smoke\n\ngo 1.22\n",
		"pkg/pkg.go": `package pkg

import "math/rand"

func Jitter(x float64) bool {
	return x == rand.Float64()
}
`,
	})
	var out, errb strings.Builder
	code := run([]string{"-C", root, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errb.String())
	}
	for _, want := range []string{"[floatcmp]", "[globalrand]", "pkg/pkg.go:6:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errb.String(), "2 finding(s)") {
		t.Errorf("stderr missing finding count: %s", errb.String())
	}
}

func TestRunClean(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module smoke\n\ngo 1.22\n",
		"pkg/pkg.go": `package pkg

// Twice doubles x.
func Twice(x float64) float64 { return 2 * x }
`,
	})
	var out, errb strings.Builder
	if code := run([]string{"-C", root, "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Errorf("expected no output on a clean module, got:\n%s", out.String())
	}
}

func TestRunChecksFlagSelectsSubset(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module smoke\n\ngo 1.22\n",
		"pkg/pkg.go": `package pkg

import "math/rand"

func Jitter(x float64) bool {
	return x == rand.Float64()
}
`,
	})
	var out, errb strings.Builder
	if code := run([]string{"-C", root, "-checks", "globalrand", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if strings.Contains(out.String(), "[floatcmp]") {
		t.Errorf("-checks globalrand must not run floatcmp:\n%s", out.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"floatcmp", "units", "globalrand", "errcheck", "locksleep"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestRunUnknownCheck(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-checks", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown check") {
		t.Errorf("stderr missing unknown-check error: %s", errb.String())
	}
}

func TestRunOutsideModule(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-C", t.TempDir()}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, errb.String())
	}
}
