package main

import (
	"os"
	"path/filepath"
	"testing"

	"acsel/internal/core"
)

func TestTrainWritesLoadableModel(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "model.json")
	profiles := filepath.Join(dir, "profiles.json")
	if err := run(out, "LULESH", 4, 1, false, profiles, "", false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := core.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 4 {
		t.Errorf("k = %d", m.K)
	}
	if fi, err := os.Stat(profiles); err != nil || fi.Size() == 0 {
		t.Error("profiles dump missing or empty")
	}
}

func TestTrainRejectsUnknownHoldout(t *testing.T) {
	dir := t.TempDir()
	if err := run(filepath.Join(dir, "m.json"), "NotABenchmark", 5, 1, false, "", "", false); err == nil {
		t.Error("unknown holdout accepted")
	}
}

func TestTrainLogTargets(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "model.json")
	if err := run(out, "", 5, 1, true, "", "", true); err != nil {
		t.Fatal(err)
	}
}
