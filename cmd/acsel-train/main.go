// Command acsel-train runs the offline stage (§III-B): it characterizes
// the training suite on the simulated Trinity APU, clusters kernels by
// Pareto-frontier similarity, fits per-cluster power and performance
// regressions, trains the cluster classification tree, and writes the
// resulting model to a JSON file usable by acsel-predict.
//
// Usage:
//
//	acsel-train -out model.json
//	acsel-train -out model.json -holdout LULESH   # leave a benchmark out
//	acsel-train -out model.json -k 4 -iterations 5 -log-targets
//	acsel-train -out model.json -model-cache .acsel-cache   # reuse prior trainings
package main

import (
	"flag"
	"fmt"
	"os"

	"acsel/internal/core"
	"acsel/internal/eval"
	"acsel/internal/kernels"
	"acsel/internal/profiler"
	"acsel/internal/trace"
)

func main() {
	out := flag.String("out", "model.json", "output model file")
	holdout := flag.String("holdout", "", "benchmark to exclude from training (cross-validation)")
	k := flag.Int("k", 5, "cluster count")
	iters := flag.Int("iterations", 3, "profiling iterations per configuration")
	logTargets := flag.Bool("log-targets", false, "variance-stabilizing log transform on power targets")
	profileOut := flag.String("profiles", "", "optional file to dump the raw profiling history (JSON)")
	modelCache := flag.String("model-cache", "", "optional directory for the content-addressed trained-model cache")
	verbose := flag.Bool("v", false, "print cluster assignments and the classifier tree")
	flag.Parse()

	if err := run(*out, *holdout, *k, *iters, *logTargets, *profileOut, *modelCache, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "acsel-train:", err)
		os.Exit(1)
	}
}

func run(out, holdout string, k, iters int, logTargets bool, profileOut, modelCache string, verbose bool) error {
	var ks []kernels.Kernel
	var excluded int
	for _, c := range kernels.Combos() {
		if c.Benchmark == holdout {
			excluded += len(c.Kernels)
			continue
		}
		ks = append(ks, c.Kernels...)
	}
	if len(ks) == 0 {
		return fmt.Errorf("no training kernels left after holding out %q", holdout)
	}
	if holdout != "" && excluded == 0 {
		return fmt.Errorf("unknown holdout benchmark %q", holdout)
	}

	p := profiler.New()
	opts := core.DefaultTrainOptions()
	opts.K = k
	opts.Iterations = iters
	opts.LogTargets = logTargets

	fmt.Fprintf(os.Stderr, "characterizing %d kernel/input combinations at %d configurations...\n", len(ks), p.Space.Len())
	profiles, err := core.Characterize(p, ks, opts)
	if err != nil {
		return err
	}
	model, hit, err := core.TrainCached(p.Space, profiles, opts, modelCache)
	if err != nil {
		return err
	}
	if hit {
		fmt.Fprintf(os.Stderr, "model loaded from cache %s\n", modelCache)
	}

	if err := trace.WriteFile(out, model.Save); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "model written to %s (k=%d, cluster sizes %v)\n", out, model.K, model.ClusterSizes())

	if profileOut != "" {
		if err := trace.WriteFile(profileOut, p.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "profiling history written to %s (%d samples)\n", profileOut, len(p.History()))
	}

	if verbose {
		fmt.Println(eval.ReportClusterAssignments(model))
		fmt.Println("classification tree:")
		fmt.Println(model.RenderTree())
		diag, err := model.ReportDiagnostics()
		if err != nil {
			return err
		}
		fmt.Println(diag)
	}
	return nil
}
