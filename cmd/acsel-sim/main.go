// Command acsel-sim drives the Trinity APU simulator directly: it runs
// a kernel (from the suite, or a custom synthetic workload) at one
// configuration or across the whole configuration space, printing
// execution time, per-domain power, counters, and the measured Pareto
// frontier. It is the "just the substrate" tool for exploring the
// machine model without the prediction pipeline.
//
// Usage:
//
//	acsel-sim -kernel LULESH/Large/CalcQForElems -sweep
//	acsel-sim -kernel LU/Small/lud -device GPU -cpu-freq 3.7 -gpu-freq 0.819
//	acsel-sim -flops 5e8 -bytes 2e8 -parfrac 0.9 -gpu-affinity 0.3 -sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"acsel/internal/apu"
	"acsel/internal/counters"
	"acsel/internal/kernels"
	"acsel/internal/pareto"
)

func main() {
	kernelID := flag.String("kernel", "", "suite kernel as Benchmark/Input/Name (overrides -flops etc.)")
	flops := flag.Float64("flops", 5e8, "synthetic workload: floating-point operations")
	bytes := flag.Float64("bytes", 1e8, "synthetic workload: DRAM bytes")
	parfrac := flag.Float64("parfrac", 0.95, "synthetic workload: parallel fraction")
	vecfrac := flag.Float64("vecfrac", 0.5, "synthetic workload: vector instruction fraction")
	gpuAff := flag.Float64("gpu-affinity", 0.25, "synthetic workload: GPU affinity (0..1]")
	launch := flag.Float64("launch-cycles", 3e6, "synthetic workload: kernel-launch CPU cycles")

	device := flag.String("device", "CPU", "device: CPU or GPU")
	cpuFreq := flag.Float64("cpu-freq", 3.7, "CPU frequency in GHz")
	threads := flag.Int("threads", 4, "CPU thread count")
	gpuFreq := flag.Float64("gpu-freq", 0.311, "GPU frequency in GHz")
	sweep := flag.Bool("sweep", false, "run the whole configuration space and print the frontier")
	showCounters := flag.Bool("counters", false, "print the performance-counter readout")
	flag.Parse()

	if err := run(*kernelID, *flops, *bytes, *parfrac, *vecfrac, *gpuAff, *launch,
		*device, *cpuFreq, *threads, *gpuFreq, *sweep, *showCounters); err != nil {
		fmt.Fprintln(os.Stderr, "acsel-sim:", err)
		os.Exit(1)
	}
}

func workloadFor(kernelID string, flops, bytes, parfrac, vecfrac, gpuAff, launch float64) (apu.Workload, error) {
	if kernelID != "" {
		for _, c := range kernels.Combos() {
			for _, k := range c.Kernels {
				if k.ID() == kernelID {
					return k.Workload, nil
				}
			}
		}
		return apu.Workload{}, fmt.Errorf("unknown kernel %q", kernelID)
	}
	w := apu.Workload{
		Name:           "synthetic",
		FLOPs:          flops,
		Bytes:          bytes,
		ParFrac:        parfrac,
		VecFrac:        vecfrac,
		BranchFrac:     0.08,
		GPUAffinity:    gpuAff,
		GPUBytesFactor: 1.1,
		LaunchCycles:   launch,
		L1MissRate:     0.03,
		L2MissRate:     0.3,
		TLBMissRate:    0.002,
		InstrPerFlop:   1.8,
	}
	return w, w.Validate()
}

func run(kernelID string, flops, bytes, parfrac, vecfrac, gpuAff, launch float64,
	device string, cpuFreq float64, threads int, gpuFreq float64, sweep, showCounters bool) error {
	w, err := workloadFor(kernelID, flops, bytes, parfrac, vecfrac, gpuAff, launch)
	if err != nil {
		return err
	}
	m := apu.DefaultMachine()
	fmt.Printf("machine: %s\n", m)
	fmt.Printf("workload: %s (%.3g flops, %.3g bytes, AI %.2f)\n", w.Name, w.FLOPs, w.Bytes, w.ArithmeticIntensity())

	if sweep {
		return runSweep(m, w)
	}

	var dev apu.Device
	switch device {
	case "CPU", "cpu":
		dev = apu.CPUDevice
	case "GPU", "gpu":
		dev = apu.GPUDevice
	default:
		return fmt.Errorf("unknown device %q", device)
	}
	cfg := apu.Config{Device: dev, CPUFreqGHz: cpuFreq, Threads: threads, GPUFreqGHz: gpuFreq}
	if dev == apu.GPUDevice {
		cfg.Threads = 1
	}
	e, err := m.Run(w, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("config: %v\n", cfg)
	fmt.Printf("time: %.6f s (comp %.6f, mem %.6f, launch %.6f, sync %.6f)\n",
		e.TimeSec, e.CompTimeSec, e.MemTimeSec, e.LaunchTimeSec, e.SyncTimeSec)
	fmt.Printf("power: CPU %.2f W, NB+GPU %.2f W, package %.2f W\n", e.CPUPowerW, e.NBGPUPowerW, e.TotalPowerW())
	fmt.Printf("perf: %.3f /s, energy %.3f J, bw %.2f GB/s, stall %.2f, gpu util %.2f\n",
		e.Perf(), e.EnergyJ(), e.AchievedBWGBs, e.StallFrac, e.GPUUtil)
	if showCounters {
		fmt.Printf("counters: %s\n", counters.Derive(w, e))
	}
	return nil
}

func runSweep(m *apu.Machine, w apu.Workload) error {
	space := apu.NewSpace()
	var pts []pareto.Point
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "id\tconfig\ttime_s\tpower_w\tperf")
	for id, cfg := range space.Configs {
		e, err := m.Run(w, cfg)
		if err != nil {
			return err
		}
		pts = append(pts, pareto.Point{ID: id, Power: e.TotalPowerW(), Perf: e.Perf()})
		fmt.Fprintf(tw, "%d\t%v\t%.6f\t%.2f\t%.3f\n", id, cfg, e.TimeSec, e.TotalPowerW(), e.Perf())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	front := pareto.New(pts)
	fmt.Println("\nPareto frontier (ascending power):")
	for _, pt := range front.Points() {
		fmt.Printf("  %6.2f W  %10.3f /s  %v\n", pt.Power, pt.Perf, space.Configs[pt.ID])
	}
	return nil
}
