package main

import "testing"

func TestWorkloadForSuiteKernel(t *testing.T) {
	w, err := workloadFor("LU/Small/lud", 0, 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "lud" {
		t.Errorf("workload = %v", w.Name)
	}
	if _, err := workloadFor("No/Such/Kernel", 0, 0, 0, 0, 0, 0); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestWorkloadForSynthetic(t *testing.T) {
	w, err := workloadFor("", 1e8, 1e7, 0.9, 0.5, 0.3, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if w.FLOPs != 1e8 {
		t.Errorf("FLOPs = %v", w.FLOPs)
	}
	if _, err := workloadFor("", -1, 1e7, 0.9, 0.5, 0.3, 1e6); err == nil {
		t.Error("invalid synthetic workload accepted")
	}
}

func TestRunSingleConfig(t *testing.T) {
	if err := run("LU/Small/lud", 0, 0, 0, 0, 0, 0, "GPU", 3.7, 1, 0.819, false, true); err != nil {
		t.Fatal(err)
	}
	if err := run("", 1e8, 1e7, 0.9, 0.5, 0.3, 1e6, "CPU", 2.4, 4, 0.311, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweep(t *testing.T) {
	if err := run("LU/Small/lud", 0, 0, 0, 0, 0, 0, "CPU", 0, 0, 0, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadDevice(t *testing.T) {
	if err := run("LU/Small/lud", 0, 0, 0, 0, 0, 0, "TPU", 3.7, 1, 0.819, false, false); err == nil {
		t.Error("unknown device accepted")
	}
}
